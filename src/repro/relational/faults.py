"""Deterministic fault injection, retry policies, and circuit breaking.

SilkRoute's premise (Sec. 1) is that the middle-ware does **not** control
the RDBMS: the tuple source is a remote server reached over a connection
that can drop, stall, or shed load.  This module models that unreliability
*deterministically* so every failure scenario is replayable in tests and
CI:

* :class:`FaultPolicy` — installable on a
  :class:`~repro.relational.connection.Connection`; decides, per stream
  execution attempt, whether to raise
  :class:`~repro.common.errors.TransientConnectionError` and how much
  simulated connection latency to add.  Decisions come from a PRNG seeded
  by ``(seed, label, plan fingerprint, attempt)``, so they are independent
  of execution order (sequential and concurrent dispatch draw identical
  outcomes) and stable across processes (string seeding hashes through
  SHA-512, not ``PYTHONHASHSEED``).
* :class:`RetryPolicy` — exponential backoff with deterministic jitter.
  Backoff is charged to the *simulated* clock (reports' ``backoff_ms`` and
  the ``elapsed_*`` makespans), preserving the sim/wall-clock separation
  of docs/API.md; per-stream deadlines default to the plan's ``budget_ms``.
* :class:`CircuitBreaker` — per-plan-fingerprint consecutive-failure
  counter: once a stream has exhausted its retries ``threshold`` times,
  further submissions of the same plan fail fast instead of burning more
  attempts and backoff against a source that keeps refusing it.

The injection point is the connection boundary, *before* the engine sees
the plan: a faulted attempt never reads or writes the
:class:`~repro.relational.cache.PlanResultCache`, so fault outcomes are
never cached, and a plan already cached is replayed without touching the
flaky source at all (no fault draw, no attempt recorded).
"""

import random
import threading
from dataclasses import dataclass


def _rng(*parts):
    """A PRNG keyed by the given parts — deterministic across processes
    and independent of draw order (a fresh generator per decision)."""
    return random.Random("|".join(str(part) for part in parts))


@dataclass(frozen=True)
class FaultDecision:
    """One attempt's drawn outcome."""

    fail: bool
    latency_ms: float = 0.0


@dataclass(frozen=True)
class FaultPolicy:
    """Deterministic per-attempt fault injection.

    ``error_rate`` is the probability that any single stream submission
    fails with :class:`~repro.common.errors.TransientConnectionError`;
    ``latency_ms`` scales an added simulated connection latency per
    attempt (drawn in ``[0.5, 1.5] * latency_ms``; on a failing attempt it
    is the time wasted before the failure was detected).  ``fail_streams``
    pins specific streams: an iterable of labels that *always* fail, or a
    mapping ``label -> n`` failing that stream's first ``n`` attempts —
    the lever for reproducing a specific scenario (a stream that recovers
    on the third try, a stream that never recovers and must be degraded).

    The policy is frozen and stateless: the decision for ``(label,
    fingerprint, attempt)`` is a pure function of the seed, which is what
    makes concurrent dispatch, retries, and degradation re-planning
    replayable.  Fault draws follow the stream *label*, so a degraded
    re-plan whose root stream keeps the failing label keeps failing —
    by design (the finer plan still opens the same logical stream) — while
    its differently-labeled siblings draw fresh outcomes.
    """

    seed: int = 0
    error_rate: float = 0.0
    latency_ms: float = 0.0
    #: tuple of ``(label, limit)`` pairs; ``limit`` None means every
    #: attempt fails (normalized from the iterable/mapping forms).
    fail_streams: tuple = ()

    def __post_init__(self):
        pairs = self.fail_streams
        if isinstance(pairs, dict):
            pairs = tuple(sorted(pairs.items()))
        else:
            normalized = []
            for entry in pairs:
                if isinstance(entry, str):
                    normalized.append((entry, None))
                else:
                    label, limit = entry
                    normalized.append((label, limit))
            pairs = tuple(sorted(normalized, key=lambda p: p[0]))
        object.__setattr__(self, "fail_streams", pairs)

    def _pinned_limit(self, label):
        for pinned, limit in self.fail_streams:
            if pinned == label:
                return True, limit
        return False, None

    def decide(self, label, fingerprint, attempt):
        """The deterministic :class:`FaultDecision` for one submission."""
        rng = _rng(self.seed, label, fingerprint, attempt)
        # Draw order is fixed so latency values are comparable across
        # configurations that only change the failure rule.
        error_draw = rng.random()
        latency = 0.0
        if self.latency_ms:
            latency = self.latency_ms * (0.5 + rng.random())
        pinned, limit = self._pinned_limit(label)
        if pinned:
            fail = limit is None or attempt <= limit
        else:
            fail = error_draw < self.error_rate
        return FaultDecision(fail=fail, latency_ms=latency)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    A stream execution is attempted at most ``max_attempts`` times.  The
    wait before retry *k* (1-based failure count) is ``base_ms *
    multiplier**(k-1)``, jittered by ``±jitter`` (a fraction, drawn
    deterministically per ``(seed, label, k)``).  All waits are *simulated*
    milliseconds: they are charged to the report's ``backoff_ms`` and the
    elapsed makespans, never slept for.

    ``deadline_ms`` bounds the simulated time a stream may burn on failed
    attempts (wasted connection latency) plus backoff; when None, the
    plan-level ``budget_ms`` is used.  A retry whose backoff would cross
    the deadline is abandoned — the stream is treated as exhausted.
    """

    max_attempts: int = 4
    base_ms: float = 50.0
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline_ms: float = None

    def backoff_for(self, label, failure_index, seed=0):
        """Simulated wait after the ``failure_index``-th failure (1-based);
        0 when no further attempt is allowed."""
        if failure_index >= self.max_attempts:
            return 0.0
        backoff = self.base_ms * self.multiplier ** (failure_index - 1)
        if self.jitter:
            u = _rng(seed, "backoff", label, failure_index).random()
            backoff *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return backoff


#: A policy that never retries: one attempt, no backoff.
NO_RETRY = RetryPolicy(max_attempts=1, base_ms=0.0, jitter=0.0)


class CircuitBreaker:
    """Per-key consecutive-failure breaker with an optional half-open probe.

    The key is whatever the caller counts by — historically a plan
    fingerprint, and since the replica layer also a replica id.
    ``record_failure`` counts a stream that exhausted its retries; once a
    key accumulates ``threshold`` consecutive exhaustions, :meth:`allow`
    returns False and the dispatcher fails that plan fast instead of
    hammering it.  ``record_success`` closes the circuit again.

    ``cooldown`` (None by default, preserving the legacy always-open
    behaviour) enables the classic third state: after an open key has been
    *denied* ``cooldown`` times, the next :meth:`allow` admits a single
    probe.  A successful probe (``record_success``) closes the circuit; a
    failed one (``record_failure``) re-opens it and the denial count starts
    over.  Denials stand in for elapsed time, so the state machine is a
    deterministic function of the call sequence — no wall clock.

    :meth:`state` reports ``"closed"`` / ``"open"`` / ``"half-open"``
    without side effects (the replica pool ranks replicas by it).  Thread
    safe — one breaker serves a concurrent dispatch.
    """

    def __init__(self, threshold=3, cooldown=None):
        self.threshold = threshold
        self.cooldown = cooldown
        self._failures = {}
        self._denials = {}
        self._lock = threading.Lock()
        self.trips = 0
        self.fast_failures = 0

    def state(self, key):
        """``"closed"``, ``"open"``, or ``"half-open"`` — no side effects."""
        with self._lock:
            if self._failures.get(key, 0) < self.threshold:
                return "closed"
            if (self.cooldown is not None
                    and self._denials.get(key, 0) >= self.cooldown):
                return "half-open"
            return "open"

    def allow(self, key):
        with self._lock:
            if self._failures.get(key, 0) < self.threshold:
                return True
            if self.cooldown is not None:
                denials = self._denials.get(key, 0)
                if denials >= self.cooldown:
                    # Half-open: admit one probe; the denial count restarts
                    # so a failed probe must sit out another cooldown.
                    self._denials[key] = 0
                    return True
                self._denials[key] = denials + 1
            self.fast_failures += 1
            return False

    def record_failure(self, key):
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            self._denials.pop(key, None)
            if count == self.threshold:
                self.trips += 1

    def record_success(self, key):
        with self._lock:
            self._failures.pop(key, None)
            self._denials.pop(key, None)

    def reset(self):
        with self._lock:
            self._failures.clear()
            self._denials.clear()


@dataclass
class StreamAttemptStats:
    """Resilience accounting for one stream's execution.

    ``attempts`` counts submissions to the (possibly faulty) source — a
    result served from the plan cache records zero attempts, because a
    replay never touches the source.  ``fault_latency_ms`` is the
    simulated connection time wasted by failed attempts plus the winning
    attempt's injected connection latency; together with ``backoff_ms``
    and ``hedge_wait_ms`` it is what resilience charged to the simulated
    clock on top of the fault-free execution.

    Replica accounting (zero outside a
    :class:`~repro.relational.replicas.ReplicaPool` dispatch):
    ``replica`` is the id that served the winning result, ``failovers``
    counts retries that moved to a different replica, ``hedges`` counts
    issued backup requests (each is also an attempt), ``hedge_wins``
    those whose backup finished first in simulated time, and
    ``hedge_wait_ms`` the hedge-trigger wait charged when a backup won.
    The abandoned side of a hedge charges nothing here — its simulated
    window is subsumed by the winner's — so ``server_ms`` is never
    double-counted.
    """

    label: str
    attempts: int = 0
    retries: int = 0
    faults: int = 0
    backoff_ms: float = 0.0
    fault_latency_ms: float = 0.0
    from_cache: bool = False
    replica: int = None
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_wait_ms: float = 0.0

    def record(self, metrics):
        """Record this stream's accounting into a metrics registry.

        The single point where resilience counters enter observability:
        the dispatcher calls it exactly once per stream outcome (success
        or failure) on the *same* stats object the
        :class:`~repro.core.silkroute.PlanReport` sums, so the metrics
        snapshot reconciles with the report by construction.
        """
        if self.attempts:
            metrics.inc("dispatch.attempts", self.attempts)
        if self.retries:
            metrics.inc("dispatch.retries", self.retries)
        if self.faults:
            metrics.inc("faults.injected", self.faults)
        if self.backoff_ms:
            metrics.inc("retry.backoff_ms", self.backoff_ms)
        if self.fault_latency_ms:
            metrics.inc("faults.latency_ms", self.fault_latency_ms)
        if self.from_cache:
            metrics.inc("cache.replays")
        if self.failovers:
            metrics.inc("dispatch.failovers", self.failovers)
        if self.hedges:
            metrics.inc("dispatch.hedges", self.hedges)
        if self.hedge_wins:
            metrics.inc("dispatch.hedge_wins", self.hedge_wins)
        if self.hedge_wait_ms:
            metrics.inc("hedge.wait_ms", self.hedge_wait_ms)
