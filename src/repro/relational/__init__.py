"""In-memory relational engine substrate.

This package stands in for the unnamed commercial RDBMS the paper reached
over JDBC.  It provides:

* schema definition with keys and foreign keys (:mod:`repro.relational.schema`),
* tables, a database catalog, and per-table statistics
  (:mod:`repro.relational.table`, :mod:`repro.relational.database`),
* functional/inclusion dependency reasoning used by view-tree labeling
  (:mod:`repro.relational.dependencies`),
* a relational-algebra IR (:mod:`repro.relational.algebra`),
* SQL text rendering and a parser for the generated subset
  (:mod:`repro.relational.sqltext`, :mod:`repro.relational.sqlparse`),
* the executing engine with a deterministic analytical cost model
  (:mod:`repro.relational.engine`),
* a cardinality/cost estimator, the "RDBMS oracle" of Sec. 5
  (:mod:`repro.relational.estimator`), and
* a client/server connection layer with simulated transfer timing
  (:mod:`repro.relational.connection`),
* real execution backends with cross-engine validation
  (:mod:`repro.relational.backends`), and
* measurement-calibrated cost estimation
  (:mod:`repro.relational.calibrate`).
"""

from repro.relational.types import SqlType
from repro.relational.schema import Column, TableSchema, ForeignKey, DatabaseSchema
from repro.relational.table import Table
from repro.relational.database import Database, TableStats, synthesize_rows
from repro.relational.dependencies import (
    FunctionalDependency,
    InclusionDependency,
    attribute_closure,
    implies_fd,
    plan_tables,
)
from repro.relational.algebra import (
    ColumnRef,
    Literal,
    Comparison,
    And,
    Scan,
    Filter,
    Project,
    Distinct,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Sort,
    ConstantColumn,
)
from repro.relational.cache import (
    CacheStats,
    NodeResultCache,
    PlanResultCache,
    resolve_cache,
)
from repro.relational.engine import CostModel, QueryEngine, ExecutionResult, IterResult
from repro.relational.estimator import CostEstimator, EstimateCache
from repro.relational.explain import explain_plan
from repro.relational.faults import (
    NO_RETRY,
    CircuitBreaker,
    FaultPolicy,
    RetryPolicy,
    StreamAttemptStats,
)
from repro.relational.sqlparse import parse_sql
from repro.relational.sqltext import render_sql
from repro.relational.connection import (
    Connection,
    SourceDescription,
    TupleCursor,
    TupleStream,
)
from repro.relational.dispatch import (
    DispatchResult,
    execute_specs,
    run_spec_with_retry,
    simulated_makespan,
)
from repro.relational.backends import (
    BACKEND_NAMES,
    Backend,
    SimulatedBackend,
    SqliteBackend,
    resolve_backend,
)
from repro.relational.calibrate import (
    CalibratedCostModel,
    CalibrationResult,
    calibrate,
    plan_agreement,
)
from repro.relational.wal import (
    RecoveryReport,
    WriteAheadLog,
    recover,
)
from repro.relational.replicas import (
    AdmissionController,
    AdmissionPolicy,
    ReplicaHealth,
    ReplicaPool,
    ReplicaSet,
    replica_fault_policy,
    resolve_admission,
    resolve_pool,
)

__all__ = [
    "SqlType",
    "Column",
    "TableSchema",
    "ForeignKey",
    "DatabaseSchema",
    "Table",
    "Database",
    "TableStats",
    "synthesize_rows",
    "FunctionalDependency",
    "InclusionDependency",
    "attribute_closure",
    "implies_fd",
    "plan_tables",
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Scan",
    "Filter",
    "Project",
    "Distinct",
    "InnerJoin",
    "LeftOuterJoin",
    "OuterUnion",
    "Sort",
    "ConstantColumn",
    "CacheStats",
    "NodeResultCache",
    "PlanResultCache",
    "resolve_cache",
    "FaultPolicy",
    "RetryPolicy",
    "NO_RETRY",
    "CircuitBreaker",
    "StreamAttemptStats",
    "CostModel",
    "QueryEngine",
    "ExecutionResult",
    "IterResult",
    "CostEstimator",
    "EstimateCache",
    "Connection",
    "TupleCursor",
    "TupleStream",
    "DispatchResult",
    "execute_specs",
    "run_spec_with_retry",
    "simulated_makespan",
    "AdmissionController",
    "AdmissionPolicy",
    "ReplicaHealth",
    "ReplicaPool",
    "ReplicaSet",
    "replica_fault_policy",
    "resolve_admission",
    "resolve_pool",
    "SourceDescription",
    "explain_plan",
    "parse_sql",
    "render_sql",
    "BACKEND_NAMES",
    "Backend",
    "SimulatedBackend",
    "SqliteBackend",
    "resolve_backend",
    "CalibratedCostModel",
    "CalibrationResult",
    "calibrate",
    "plan_agreement",
    "RecoveryReport",
    "WriteAheadLog",
    "recover",
]
