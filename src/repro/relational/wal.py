"""Durable write-ahead logging and crash recovery for the mutation API.

The middle-ware's materialized state (PR 7's incremental views, PR 8's
serving layer) is only as trustworthy as its base tables: before this
module, every ``Database.insert/update/delete`` lived in process memory
and a server crash silently lost committed writes.  The
:class:`WriteAheadLog` makes the mutation API durable with the classic
recipe:

* **log-then-apply** — each mutation's *physical* delta (inserted row,
  ``(pre-image key, new row)`` update pairs, deleted keys) is appended to
  an append-only, checksummed, ``fsync``'d log *before* the in-memory
  commit.  Value-based logging makes replay exact even for mutations
  expressed with arbitrary Python callables.
* **generation stamps** — every logged op carries the table's post-op
  generation (:attr:`~repro.relational.table.Table.version`).  The stamp
  is the op's LSN: recovery applies an op only when its stamp exceeds the
  table's current generation, which makes replay idempotent across the
  checkpoint race (a crash between snapshot rename and log truncation
  re-reads ops the snapshot already contains — they are skipped).
* **group commit** — :meth:`~repro.relational.database.Database.transaction`
  buffers a request's ops and appends them as ONE checksummed record, so
  a multi-row request is atomic on disk: the crash either persists the
  whole group or none of it.
* **checkpoint** — :meth:`WriteAheadLog.checkpoint` snapshots the whole
  database (rows + generation vector + the request-dedup map) into a
  temporary file, ``fsync``\\ s, atomically renames it over the previous
  snapshot, and only then truncates the log.  ``checkpoint_every=N``
  checkpoints automatically after every N committed records.
* **recovery** — :func:`recover` (or :meth:`WriteAheadLog.attach` on a
  restart) loads the snapshot, replays the log tail, and *tolerates torn
  or partial trailing records*: the reader stops at the first record
  whose length or CRC32 does not check out and reports the dropped
  suffix (``RecoveryReport.torn_bytes``).  A torn tail is a crash
  mid-append — the interrupted mutation never acknowledged, so dropping
  it is correct.  Recovered tables are bit-identical to the pre-crash
  commit point: rows, order, and generation counters.

**Idempotency.**  Records may carry a client ``request_id`` and the
request's recorded result.  The dedup map (rebuilt by recovery, persisted
by checkpoints) is what makes the serving layer's mutations exactly-once
across restarts: a client retry of an already-committed request gets the
recorded result back instead of a second application.

**Cache interaction.**  A recovered database is keyed like any other:
caches key on ``(instance token, per-table generations)``, a recovered
``Database`` is a fresh instance with a fresh token, so nothing stale can
be served; and because generations are restored exactly, the recovered
state invalidates precisely what the live mutations would have.  Restore
into an *existing* database must happen before that database serves any
query (the restart path does this by construction).

On-disk layout (``wal_path`` is a directory)::

    wal_path/
      snapshot     8-byte magic + one checksummed record (the database)
      wal.log      8-byte magic + zero or more checksummed records

Record framing: ``<uint32 length><uint32 crc32(payload)><payload>``,
little-endian; payloads are compact JSON (dates as ``{"d": "ISO-8601"}``).
"""

import datetime
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.common.errors import WalError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

#: File magic: format name + version byte, padded to 8 bytes.
MAGIC = b"RWAL\x01\x00\x00\x00"
_HEADER = struct.Struct("<II")

#: Sanity bound on a single record; a length field past this is treated
#: as tail corruption, not an allocation request.
MAX_RECORD_BYTES = 64 * 1024 * 1024

WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot"

#: The named durability boundaries the chaos harness can kill a process
#: at (see :func:`set_crash_hook`).
CRASH_POINTS = (
    "append.before_write",
    "append.before_fsync",
    "append.after_fsync",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "checkpoint.after_truncate",
)

_crash_hook = None


def set_crash_hook(hook):
    """Install a test hook called with each :data:`CRASH_POINTS` name as
    the log crosses that durability boundary (None uninstalls).  The
    crash harness uses this to SIGKILL itself mid-append/mid-checkpoint;
    production code never sets it."""
    global _crash_hook
    _crash_hook = hook
    return hook


def _crash_point(name):
    if _crash_hook is not None:
        _crash_hook(name)


# -- value / record codecs --------------------------------------------------


def _encode_value(value):
    if isinstance(value, datetime.date):
        return {"d": value.isoformat()}
    return value


def _decode_value(value):
    if isinstance(value, dict):
        return datetime.date.fromisoformat(value["d"])
    return value


def _encode_row(row):
    return [_encode_value(v) for v in row]


def _decode_row(row):
    return tuple(_decode_value(v) for v in row)


def pack_record(payload):
    """One framed record: length + CRC32 header, then the payload."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def iter_records(data, offset=0):
    """Yield ``(payload, end_offset)`` for every intact record in
    ``data`` from ``offset``; stop silently at the first torn or corrupt
    one (short header, short payload, implausible length, CRC mismatch).
    The last yielded ``end_offset`` is the durable prefix boundary."""
    size = len(data)
    while offset + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or start + length > size:
            return
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            return
        yield payload, start + length
        offset = start + length


# -- logical ops ------------------------------------------------------------


def insert_op(table, row, version):
    return {"kind": "insert", "table": table, "row": _encode_row(row),
            "version": version}


def update_op(table, pairs, version):
    return {
        "kind": "update", "table": table,
        "pairs": [[_encode_row(key), _encode_row(row)] for key, row in pairs],
        "version": version,
    }


def delete_op(table, keys, version):
    return {"kind": "delete", "table": table,
            "keys": [_encode_row(key) for key in keys], "version": version}


def apply_op(database, op):
    """Apply one logged op to ``database``; returns True when applied,
    False when the op's generation stamp shows the table already reflects
    it (the snapshot was taken after this record was logged)."""
    table = database.table(op["table"])
    version = op["version"]
    if version <= table.version:
        return False
    kind = op["kind"]
    if kind == "insert":
        table.insert(*_decode_row(op["row"]))
    elif kind == "update":
        table.apply_update(
            [(_decode_row(key), _decode_row(row)) for key, row in op["pairs"]]
        )
    elif kind == "delete":
        table.apply_delete([_decode_row(key) for key in op["keys"]])
    else:
        raise WalError(f"unknown WAL op kind {kind!r}")
    table.version = version
    return True


# -- recovery ---------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery did: where it read, how much it replayed, and
    what it dropped.

    ``snapshot_rows`` counts the rows restored from the snapshot (0
    without one); ``records_scanned``/``records_applied`` count whole
    commit records, ``ops_applied``/``ops_skipped`` the per-table ops
    inside them (skipped = already reflected by the snapshot — the
    checkpoint-race idempotency); ``torn_bytes`` is the corrupt/partial
    suffix dropped from the log tail; ``dedup`` maps committed request
    ids to their recorded results (the exactly-once map); ``tables``
    maps table names to ``(row count, generation)`` after recovery.
    """

    path: str
    snapshot_rows: int = 0
    records_scanned: int = 0
    records_applied: int = 0
    ops_applied: int = 0
    ops_skipped: int = 0
    torn_bytes: int = 0
    wall_ms: float = 0.0
    dedup: dict = field(default_factory=dict)
    tables: dict = field(default_factory=dict)

    def as_dict(self):
        return {
            "path": self.path,
            "snapshot_rows": self.snapshot_rows,
            "records_scanned": self.records_scanned,
            "records_applied": self.records_applied,
            "ops_applied": self.ops_applied,
            "ops_skipped": self.ops_skipped,
            "torn_bytes": self.torn_bytes,
            "wall_ms": self.wall_ms,
            "tables": {name: list(v) for name, v in self.tables.items()},
        }


def _read_framed_file(path, what):
    """``(payload list, good_offset, total_size)`` of a framed file; a
    missing file or a tail torn before the magic completes reads as
    empty.  A *present but wrong* magic is real corruption."""
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    if len(data) < len(MAGIC):
        return [], 0, len(data)
    if data[:len(MAGIC)] != MAGIC:
        raise WalError(f"{what} {path} is not a recognized WAL file")
    payloads = []
    good = len(MAGIC)
    for payload, end in iter_records(data, len(MAGIC)):
        payloads.append(payload)
        good = end
    return payloads, good, len(data)


def _load_snapshot(path):
    """The decoded snapshot payload dict, or None when no snapshot
    exists.  A snapshot is written atomically (tmp + fsync + rename), so
    a torn one is corruption, not a tolerated crash artifact."""
    snapshot = Path(path) / SNAPSHOT_FILE
    if not snapshot.exists():
        return None
    payloads, _, size = _read_framed_file(snapshot, "snapshot")
    if not payloads:
        raise WalError(
            f"snapshot {snapshot} is corrupt ({size} byte(s), no intact "
            f"record) — snapshots are written atomically, so this is "
            f"damage, not a torn append"
        )
    return json.loads(payloads[0].decode("utf-8"))


def _restore_snapshot(database, payload):
    tables = payload["tables"]
    have = set(database.tables)
    want = set(tables)
    if have != want:
        raise WalError(
            f"snapshot catalog mismatch: snapshot has "
            f"{sorted(want - have) or '[]'} extra / "
            f"{sorted(have - want) or '[]'} missing vs the database schema"
        )
    rows_restored = 0
    for name, entry in tables.items():
        rows = [_decode_row(row) for row in entry["rows"]]
        database.table(name).restore(rows, entry["version"])
        rows_restored += len(rows)
    database._stats.clear()
    return rows_restored


def recover(path, schema=None, database=None, backends=(), metrics=None,
            tracer=None):
    """Reconstruct a database from ``path``'s snapshot + log tail.

    Pass ``schema`` to build a fresh :class:`~repro.relational.database.
    Database` (the restart path), or ``database`` to restore into an
    existing *unqueried* instance.  Torn/partial trailing records are
    tolerated and reported, never raised.  ``backends`` are real-backend
    mirrors (e.g. :class:`~repro.relational.backends.SqliteBackend`) to
    re-mirror from the recovered state — each has
    :meth:`~repro.relational.backends.sqlite.SqliteBackend.refresh`
    called so its next execution reloads every table.

    Returns ``(database, RecoveryReport)``.
    """
    metrics = metrics if metrics is not None else NULL_METRICS
    tracer = tracer if tracer is not None else NULL_TRACER
    if database is None:
        if schema is None:
            raise WalError("recover() needs a schema or a database")
        from repro.relational.database import Database

        database = Database(schema)
    path = Path(path)
    started = perf_counter()
    with tracer.span("recover", path=str(path)):
        snapshot = _load_snapshot(path)
        snapshot_rows = 0
        dedup = {}
        if snapshot is not None:
            snapshot_rows = _restore_snapshot(database, snapshot)
            dedup.update(snapshot.get("dedup") or {})
        payloads, good, size = _read_framed_file(path / WAL_FILE, "WAL")
        records_applied = ops_applied = ops_skipped = 0
        for payload in payloads:
            record = json.loads(payload.decode("utf-8"))
            applied_any = False
            for op in record.get("ops", ()):
                if apply_op(database, op):
                    ops_applied += 1
                    applied_any = True
                else:
                    ops_skipped += 1
            if applied_any or record.get("ops") == []:
                records_applied += 1
            request_id = record.get("request_id")
            if request_id is not None:
                dedup[request_id] = record.get("result")
    wall_ms = (perf_counter() - started) * 1000.0
    report = RecoveryReport(
        path=str(path),
        snapshot_rows=snapshot_rows,
        records_scanned=len(payloads),
        records_applied=records_applied,
        ops_applied=ops_applied,
        ops_skipped=ops_skipped,
        torn_bytes=max(0, size - good) if size else 0,
        wall_ms=wall_ms,
        dedup=dedup,
        tables={
            name: (len(table), table.version)
            for name, table in database.tables.items()
        },
    )
    metrics.inc("wal.recoveries")
    metrics.inc("wal.records_replayed", report.records_scanned)
    metrics.inc("wal.ops_replayed", ops_applied)
    metrics.inc("wal.torn_bytes", report.torn_bytes)
    for backend in backends:
        backend.refresh()
    return database, report


# -- the log ----------------------------------------------------------------


class WriteAheadLog:
    """One durable mutation log + snapshot pair under a directory.

    ``checkpoint_every=N`` snapshots + truncates automatically after
    every N committed records (None never auto-checkpoints — call
    :meth:`checkpoint` yourself).  ``durable=False`` skips the per-append
    ``fsync`` (for tests that hammer the log; the serving layer always
    runs durable).  ``metrics`` receives the ``wal.*`` counters
    (appends, ops, bytes, fsyncs, checkpoints, dedup hits, recoveries).

    Typical lifecycle — the same call works for a cold start and a
    restart::

        wal = WriteAheadLog("state/", checkpoint_every=256)
        report = wal.attach(database)   # restore if state exists,
                                        # else write the initial snapshot
        database.insert(...)            # logged + fsynced before applied
    """

    def __init__(self, path, checkpoint_every=None, metrics=None,
                 tracer=None, durable=True):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.durable = durable
        self._lock = threading.RLock()
        self._file = None
        self._dedup = {}
        self._records_since_checkpoint = 0
        self._database = None

    @property
    def wal_file(self):
        return self.path / WAL_FILE

    @property
    def snapshot_file(self):
        return self.path / SNAPSHOT_FILE

    # -- idempotency --------------------------------------------------------

    def request_result(self, request_id):
        """The recorded result of an already-committed request, or None —
        the serving layer's exactly-once check.  Survives restarts: the
        map is rebuilt by recovery and persisted by checkpoints."""
        with self._lock:
            result = self._dedup.get(request_id)
        if result is not None:
            self.metrics.inc("wal.dedup_hits")
        return result

    def request_results(self):
        """A copy of the committed ``{request_id: result}`` map."""
        with self._lock:
            return dict(self._dedup)

    # -- attach / restore ---------------------------------------------------

    def attach(self, database):
        """Bind ``database`` to this log: restore its state when the
        directory already holds one (returns the
        :class:`RecoveryReport`), else write the initial snapshot
        (returns None).  Either way, subsequent
        ``database.insert/update/delete`` commit through this log.  The
        database must not have served queries yet — restore replaces
        table contents underneath any warmed cache."""
        with self._lock:
            if database.wal is not None:
                raise WalError("database is already attached to a WAL")
            self._database = database
            report = None
            if self.snapshot_file.exists() or self.wal_file.exists():
                _, report = recover(
                    self.path, database=database, metrics=self.metrics,
                    tracer=self.tracer,
                )
                self._dedup = dict(report.dedup)
                # Clip any torn tail so future appends start at a clean
                # record boundary, and keep appending to the survivor.
                if report.torn_bytes:
                    self._truncate_torn_tail()
                self._records_since_checkpoint = report.records_scanned
            else:
                database.attach_wal(self)
                self.checkpoint(database)
                return None
            database.attach_wal(self)
            return report

    def _truncate_torn_tail(self):
        data = self.wal_file.read_bytes() if self.wal_file.exists() else b""
        good = len(MAGIC) if len(data) >= len(MAGIC) else 0
        for _, end in iter_records(data, good or len(MAGIC)):
            good = end
        with open(self.wal_file, "r+b" if data else "wb") as f:
            if not data:
                f.write(MAGIC)
                good = len(MAGIC)
            f.truncate(good)
            f.flush()
            if self.durable:
                os.fsync(f.fileno())

    # -- appending ----------------------------------------------------------

    def _open(self):
        if self._file is None:
            fresh = (not self.wal_file.exists()
                     or self.wal_file.stat().st_size == 0)
            self._file = open(self.wal_file, "ab")
            if fresh:
                self._file.write(MAGIC)
        return self._file

    def append(self, ops, request_id=None, result=None):
        """Append one commit record (a list of physical ops, optionally a
        request id + its result) and make it durable.  The ``fsync``
        before return is the commit point: once this method returns, the
        record survives any crash."""
        payload = json.dumps(
            {"ops": list(ops), "request_id": request_id, "result": result},
            separators=(",", ":"),
        ).encode("utf-8")
        record = pack_record(payload)
        with self._lock:
            f = self._open()
            _crash_point("append.before_write")
            f.write(record)
            f.flush()
            _crash_point("append.before_fsync")
            if self.durable:
                os.fsync(f.fileno())
                self.metrics.inc("wal.fsyncs")
            _crash_point("append.after_fsync")
            if request_id is not None:
                self._dedup[request_id] = result
            self._records_since_checkpoint += 1
            self.metrics.inc("wal.appends")
            self.metrics.inc("wal.ops", len(ops))
            self.metrics.inc("wal.bytes", len(record))

    def maybe_checkpoint(self, database=None):
        """Checkpoint when ``checkpoint_every`` records have accumulated
        since the last one.  Called by the database *after* applying a
        logged mutation, so the snapshot always contains what the log it
        truncates contained."""
        with self._lock:
            if (self.checkpoint_every is not None
                    and self._records_since_checkpoint
                    >= self.checkpoint_every):
                self.checkpoint(database or self._database)

    # -- checkpoint ---------------------------------------------------------

    def _snapshot_payload(self, database):
        return json.dumps(
            {
                "tables": {
                    name: {
                        "version": table.version,
                        "rows": [_encode_row(row) for row in table.rows],
                    }
                    for name, table in database.tables.items()
                },
                "dedup": self._dedup,
            },
            separators=(",", ":"),
        ).encode("utf-8")

    def checkpoint(self, database):
        """Snapshot ``database`` atomically, then truncate the log.

        Write order is what makes every crash point safe: the snapshot is
        built in a temporary file, ``fsync``'d, and renamed over the old
        one (atomic on POSIX) *before* the log is truncated.  A crash
        before the rename leaves the old snapshot + full log; a crash
        between rename and truncation leaves a new snapshot plus a log
        whose records it already contains — replay skips them by
        generation stamp.
        """
        if database is None:
            raise WalError("checkpoint() needs the attached database")
        with self._lock:
            started = perf_counter()
            with self.tracer.span("wal.checkpoint"):
                payload = self._snapshot_payload(database)
                tmp = self.path / (SNAPSHOT_FILE + ".tmp")
                with open(tmp, "wb") as f:
                    f.write(MAGIC)
                    f.write(pack_record(payload))
                    f.flush()
                    if self.durable:
                        os.fsync(f.fileno())
                _crash_point("checkpoint.before_rename")
                os.replace(tmp, self.snapshot_file)
                self._sync_directory()
                _crash_point("checkpoint.after_rename")
                if self._file is not None:
                    self._file.close()
                    self._file = None
                with open(self.wal_file, "wb") as f:
                    f.write(MAGIC)
                    f.flush()
                    if self.durable:
                        os.fsync(f.fileno())
                _crash_point("checkpoint.after_truncate")
                self._records_since_checkpoint = 0
            self.metrics.inc("wal.checkpoints")
            self.metrics.inc(
                "wal.checkpoint_ms", (perf_counter() - started) * 1000.0)
            self.metrics.gauge("wal.snapshot_bytes", len(payload))

    def _sync_directory(self):
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fsync
            return
        try:
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)

    # -- lifecycle ----------------------------------------------------------

    def size_bytes(self):
        """Current log size (the appended-but-not-yet-checkpointed part)."""
        try:
            return self.wal_file.stat().st_size
        except FileNotFoundError:
            return 0

    def close(self):
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return (f"WriteAheadLog({str(self.path)!r}, "
                f"checkpoint_every={self.checkpoint_every})")


class WalTransaction:
    """The recorder yielded by
    :meth:`~repro.relational.database.Database.transaction`: buffers the
    group's physical ops; the caller may set :attr:`result` (recorded
    under the group's ``request_id`` for exactly-once retries)."""

    __slots__ = ("request_id", "ops", "result")

    def __init__(self, request_id=None):
        self.request_id = request_id
        self.ops = []
        self.result = None


__all__ = [
    "CRASH_POINTS",
    "MAGIC",
    "MAX_RECORD_BYTES",
    "RecoveryReport",
    "WalTransaction",
    "WriteAheadLog",
    "apply_op",
    "delete_op",
    "insert_op",
    "iter_records",
    "pack_record",
    "recover",
    "set_crash_hook",
    "update_op",
]
