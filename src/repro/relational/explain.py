"""Textual EXPLAIN for algebra plans.

Renders a plan as an indented operator tree, optionally annotated with the
oracle's cardinality/cost estimates and (when an engine is supplied) actual
row counts — the debugging view a middle-ware developer lives in.
"""

from repro.relational.algebra import (
    Distinct,
    Filter,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Project,
    Scan,
    Sort,
)


def explain_plan(plan, estimator=None, engine=None, indent="  "):
    """Render ``plan`` as text.

    ``estimator`` adds ``est_rows``/``est_ms`` annotations; ``engine``
    executes sub-plans to add exact ``rows`` (intended for small test
    databases — it evaluates every operator).
    """
    lines = []
    _walk(plan, 0, lines, estimator, engine, indent)
    return "\n".join(lines)


def _describe(op):
    if isinstance(op, Scan):
        return f"Scan {op.table_schema.name} AS {op.alias}"
    if isinstance(op, Filter):
        return f"Filter [{op.predicate.to_sql()}]"
    if isinstance(op, Project):
        names = ", ".join(i.name for i in op.items)
        if len(names) > 60:
            names = names[:57] + "..."
        return f"Project [{names}]"
    if isinstance(op, Distinct):
        return "Distinct"
    if isinstance(op, InnerJoin):
        conds = ", ".join(f"{l} = {r}" for l, r in op.equalities) or "TRUE"
        return f"InnerJoin [{conds}]"
    if isinstance(op, LeftOuterJoin):
        branch_bits = []
        for branch in op.branches:
            tag = (
                f"{branch.tag_column}={branch.tag_value} AND "
                if branch.tag_column is not None
                else ""
            )
            eqs = ", ".join(f"{l} = {r}" for l, r in branch.equalities)
            branch_bits.append(f"({tag}{eqs or 'TRUE'})")
        return "LeftOuterJoin [" + " OR ".join(branch_bits) + "]"
    if isinstance(op, OuterUnion):
        keyword = "OuterUnion DISTINCT" if op.distinct else "OuterUnion"
        return f"{keyword} [{len(op.inputs)} branches]"
    if isinstance(op, Sort):
        keys = ", ".join(op.keys)
        if len(keys) > 60:
            keys = keys[:57] + "..."
        return f"Sort [{keys}]"
    return type(op).__name__


def _walk(op, depth, lines, estimator, engine, indent):
    annotations = []
    if estimator is not None:
        estimate = estimator.estimate(op)
        annotations.append(f"est_rows={estimate.cardinality:.0f}")
        annotations.append(f"est_ms={estimate.server_ms:.1f}")
    if engine is not None:
        result = engine.execute(op, include_startup=False)
        annotations.append(f"rows={result.row_count}")
    suffix = f"  ({', '.join(annotations)})" if annotations else ""
    lines.append(f"{indent * depth}{_describe(op)}{suffix}")
    for child in op.children:
        _walk(child, depth + 1, lines, estimator, engine, indent)
