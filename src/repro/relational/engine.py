"""Query execution with a deterministic analytical cost model.

The engine really executes plans over the in-memory database — results are
exact — while *timing* is simulated: every operator charges the
:class:`CostModel` an amount of simulated milliseconds derived from the work
it actually performed.  This replaces the paper's wall-clock measurements on
an unnamed commercial RDBMS with a reproducible model that preserves the
mechanisms the paper identifies as decisive:

* per-query startup overhead (hurts the fully partitioned strategy),
* join build/probe work, with **common-subexpression sharing** inside one
  query: identical sub-plans (by structural fingerprint) are evaluated once
  and re-read at a small per-row cost, the way an optimizer shares scans
  and join prefixes across the branches of a combined query.  Separate
  queries share nothing — this is why the fully partitioned strategy, whose
  ten queries each recompute their root-to-node join path, loses to a plan
  with fewer streams,
* blocking sorts with a memory budget and a spill penalty (hurts the unified
  plans, whose single wide integrated relation exceeds sort memory),
* an 'optimizer stress' *re-evaluation* penalty on deeply nested outer
  joins: when the right side of an outer join itself contains nested outer
  joins (depth >= ``reevaluation_threshold``), the weak optimizer fails to
  flatten the derived table and re-evaluates it per outer row.  Query 1's
  chained ``*`` edges produce such plans and some of them blow past the
  5-minute budget, exactly as in the paper's sweep; Query 2's parallel
  ``*`` edges never nest that deep and none time out.

Transfer (client-side binding) costs live in
:mod:`repro.relational.connection`, since the paper separates query-only
time from total time.
"""

import math
from dataclasses import dataclass, replace
from operator import itemgetter

from repro.common.errors import ExecutionError, TimeoutExceeded
from repro.common.ordering import NoneFirst, sort_key
from repro.relational import algebra, vector_ops
from repro.relational.batch import DEFAULT_BATCH_SIZE
from repro.relational.cache import CacheEntry, NodeResultCache
from repro.relational.dependencies import plan_tables
from repro.relational.types import width_function
from repro.relational.vector_ops import _key_plan, _hash_index  # noqa: F401
from repro.relational.algebra import (
    Scan,
    Filter,
    Project,
    Distinct,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Sort,
    ColumnRef,
    Literal,
)


@dataclass(frozen=True)
class CostModel:
    """Coefficients of the simulated server, in milliseconds.

    ``speed`` scales every charge: Config A's 350 MHz server uses a larger
    value than Config B's 566 MHz one.  The remaining knobs correspond to
    the mechanisms listed in the module docstring; the ablation benchmark
    switches them off one at a time.
    """

    speed: float = 1.0
    startup_ms: float = 15.0             # per submitted SQL query
    scan_row_ms: float = 0.010
    filter_row_ms: float = 0.002
    project_row_ms: float = 0.002
    hash_row_ms: float = 0.012           # distinct / hash-build per row
    probe_row_ms: float = 0.006
    join_out_row_ms: float = 0.004
    union_row_ms: float = 0.004
    rescan_row_ms: float = 0.002         # re-reading a shared subexpression
    sort_cmp_ms: float = 0.004           # per comparison, scaled by row width
    sort_width_norm: float = 64.0        # bytes; width scale for sort cost
    sort_memory_bytes: float = 256 * 1024
    spill_factor: float = 2.5            # extra passes once the sort spills
    #: Right-side outer-join nesting depth at which the optimizer gives up
    #: flattening and re-evaluates the derived table per outer row.
    reevaluation_threshold: int = 2
    #: Extra cost of each re-evaluation, as a multiple of the right side's
    #: one-shot evaluation cost (loss of pipelining, no caching).
    reevaluation_factor: float = 100.0

    def scaled(self, ms):
        return ms * self.speed

    def without(self, knob):
        """A copy with one mechanism disabled — for ablation benches."""
        neutral = {
            "startup_ms": 0.0,
            "spill_factor": 1.0,
            "reevaluation_factor": 0.0,
        }
        if knob not in neutral:
            raise ValueError(f"unknown ablation knob {knob!r}")
        return replace(self, **{knob: neutral[knob]})


#: Cost model for the paper's Configuration A (1 MB database, AMD K6-2
#: 350 MHz server).  Slow server: high per-row and startup charges.
CONFIG_A_COST_MODEL = CostModel(speed=4.0)

#: Cost model for Configuration B (100 MB database, Intel Celeron 566 MHz).
CONFIG_B_COST_MODEL = CostModel(speed=1.0, sort_memory_bytes=1024 * 1024)


@dataclass
class ExecutionResult:
    """Result of executing one plan: exact rows plus simulated timings."""

    columns: tuple
    rows: list
    server_ms: float
    rows_examined: int
    breakdown: dict

    @property
    def row_count(self):
        return len(self.rows)


class IterResult:
    """Result of a streaming execution: a row iterator plus live charges.

    ``server_ms`` / ``rows_examined`` / ``breakdown`` read the underlying
    accumulator *as charged so far*; they are final once :attr:`exhausted`
    is True (the iterator has been fully drained).
    """

    def __init__(self, columns, charges):
        self.columns = columns
        self._charges = charges
        self._rows = None
        self.exhausted = False

    def _attach(self, generator):
        def tracked():
            yield from generator
            self.exhausted = True
        self._rows = tracked()

    def __iter__(self):
        return self._rows

    def close(self):
        """Abandon the stream: close the generator pipeline so every
        pipeline-breaker buffer (sort runs, hash indexes, shared-subplan
        memos) is released immediately instead of at garbage collection.
        Safe to call repeatedly; a closed result stays un-:attr:`exhausted`
        and its charges are frozen at the consumed prefix."""
        if self._rows is not None:
            self._rows.close()
        self._charges.memo.clear()

    @property
    def server_ms(self):
        return self._charges.total_ms

    @property
    def rows_examined(self):
        return self._charges.rows_examined

    @property
    def breakdown(self):
        return self._charges.breakdown


def _shared_fingerprints(plan):
    """Fingerprints occurring more than once in ``plan`` — the sub-plans the
    optimizer's common-subexpression sharing will re-read, which the
    streaming path must therefore materialize on first evaluation."""
    counts = {}
    for op in algebra.walk(plan):
        fp = op.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    return frozenset(fp for fp, n in counts.items() if n > 1)


class _Charges:
    """Mutable accumulator for simulated cost, with a timeout budget.

    When ``log`` is a list, every (already scaled) charge is also appended
    to it so the execution can later be *replayed* from a
    :class:`~repro.relational.cache.PlanResultCache` entry with identical
    totals, breakdown order, and timeout behaviour.
    """

    def __init__(self, model, budget_ms):
        self.model = model
        self.budget_ms = budget_ms
        self.total_ms = 0.0
        self.rows_examined = 0
        self.breakdown = {}
        self.memo = {}
        self.memo_hits = 0
        self.log = None
        #: Per-operator-label chunk counts (batch engine only; published as
        #: ``batch.<label>.batches`` metrics).  Never affects ``total_ms``.
        self.batches = {}

    def charge(self, label, ms, rows=0):
        ms = self.model.scaled(ms)
        self.total_ms += ms
        self.rows_examined += rows
        self.breakdown[label] = self.breakdown.get(label, 0.0) + ms
        if self.log is not None:
            self.log.append((label, ms, rows))
        if self.budget_ms is not None and self.total_ms > self.budget_ms:
            raise TimeoutExceeded(self.budget_ms, self.total_ms)

    def replay(self, charge_log):
        """Re-apply a recorded charge log: the same additions in the same
        order as the original run, including raising ``TimeoutExceeded`` at
        the same charge when the budget is exceeded."""
        breakdown = self.breakdown
        for label, ms, rows in charge_log:
            self.total_ms += ms
            self.rows_examined += rows
            breakdown[label] = breakdown.get(label, 0.0) + ms
            if self.budget_ms is not None and self.total_ms > self.budget_ms:
                raise TimeoutExceeded(self.budget_ms, self.total_ms)


#: Recognized values for the ``engine=`` execution knob.
ENGINE_MODES = ("batch", "tuple")


class QueryEngine:
    """Executes algebra plans over a :class:`repro.relational.database.Database`.

    Two interchangeable execution modes produce byte-identical results,
    charge logs, and cache entries:

    * ``"batch"`` (the default) — plans are lowered once per (plan,
      batch size) into vectorized kernels
      (:mod:`repro.relational.vector_ops`) that process columnar
      :class:`~repro.relational.batch.Batch` chunks;
    * ``"tuple"`` — the original row-at-a-time interpreter, also backing
      the constant-memory streaming path of :meth:`execute_iter`.

    ``engine``/``batch_size`` set the defaults; both can be overridden per
    call.  Because results, simulated timings, and cache keys are
    identical, modes may be mixed freely against a shared cache.
    """

    def __init__(self, database, cost_model=None, cache=None,
                 engine="batch", batch_size=None):
        self.database = database
        self.cost_model = cost_model or CostModel()
        #: Optional :class:`~repro.relational.cache.PlanResultCache` shared
        #: *across* execute calls (and across engines, if desired).
        self.cache = cache
        if engine not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {engine!r}")
        self.default_engine = engine
        self.default_batch_size = batch_size or DEFAULT_BATCH_SIZE
        #: Compiled plans keyed by (plan fingerprint, batch size).  Plans
        #: recur across sweep partitions, so compilation amortizes to zero.
        self._compiled = {}
        #: Cached row-width estimates keyed by (plan fingerprint, plan
        #: dependency key): byte estimates never re-scan rows for a plan
        #: whose base tables' generations have already been sized.
        self._row_bytes = {}
        #: Batch-engine node-result cache: sub-plan fingerprint -> computed
        #: Batch, tagged with the base tables the sub-plan reads.  Sweep
        #: partitions share most of their sub-plans, so each distinct
        #: sub-tree's rows are materialized once; every later execution
        #: re-runs only the charge accounting over the shared immutable
        #: batches.  A mutation invalidates only the dependent entries
        #: (see :meth:`_refresh_dependencies`).
        self._node_results = NodeResultCache()
        #: Per-table generation snapshot from the last batch evaluation;
        #: diffed against the live database to find mutated tables.
        self._table_gens = None
        #: plan fingerprint -> frozenset of base-table names it reads.
        self._plan_tables = {}

    def _engine_mode(self, engine):
        mode = engine or self.default_engine
        if mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {mode!r}")
        return mode

    def _compiled_for(self, plan, batch_size):
        key = (plan.fingerprint(), batch_size)
        compiled = self._compiled.get(key)
        if compiled is None:
            if len(self._compiled) >= 512:
                self._compiled.pop(next(iter(self._compiled)))
            compiled = vector_ops.compile_plan(plan, self, batch_size)
            self._compiled[key] = compiled
        return compiled

    def _row_bytes_for(self, fingerprint, columns, rows, tables):
        """Average row width for ``rows`` (the output of the plan with
        ``fingerprint``, reading base ``tables``), cached per dependency
        generation.  Both engines — and the byte estimator — share one
        entry, so estimates agree and each plan's rows are sampled at most
        once per generation of its base tables."""
        key = (fingerprint, self.database.dependency_key(tables))
        cache = self._row_bytes
        if key not in cache:
            if len(cache) >= 4096:
                cache.pop(next(iter(cache)))
            cache[key] = self._average_row_bytes(columns, rows)
        return cache[key]

    def tables_for(self, plan):
        """The base tables ``plan`` reads (memoized by fingerprint) — the
        plan's invalidation footprint for delta propagation."""
        fingerprint = plan.fingerprint()
        cache = self._plan_tables
        tables = cache.get(fingerprint)
        if tables is None:
            if len(cache) >= 4096:
                cache.pop(next(iter(cache)))
            tables = plan_tables(plan)
            cache[fingerprint] = tables
        return tables

    def dependency_key(self, plan):
        """The dependency component of ``plan``'s cache key: the database
        token plus the current generations of exactly the tables the plan
        reads.  Mutating any other table leaves this key valid."""
        return self.database.dependency_key(self.tables_for(plan))

    def cache_key_for(self, plan, include_startup=True):
        """The :attr:`cache` key identifying ``plan`` on this engine.

        Dependency-scoped: the database component holds per-table
        generations of the plan's base tables, so entries for plans that
        do not read a mutated table survive the write and keep replaying.
        """
        return (
            plan.fingerprint(),
            self.dependency_key(plan),
            self.cost_model,
            include_startup,
        )

    @property
    def node_cache(self):
        """The batch engine's :class:`~repro.relational.cache.NodeResultCache`
        (the "data half" sub-plan result cache)."""
        return self._node_results

    def configure_node_cache(self, max_entries=None, retention_bytes=None):
        """Adjust the node-result cache bounds (``None`` leaves a bound
        unchanged) — the engine-level hook behind the
        ``node_cache_entries`` / ``retention_bytes`` execution options."""
        self._node_results.configure(
            max_entries=max_entries, retention_bytes=retention_bytes
        )

    def _refresh_dependencies(self, metrics=None):
        """Delta propagation: diff the live per-table generations against
        the last-seen snapshot and invalidate exactly the cache entries
        that depend on mutated tables.  Node-cache entries for untouched
        sub-plans survive and keep serving; plan-cache entries under stale
        dependency keys can never be served again (the key moved), so
        dropping them there is garbage collection plus accounting."""
        current = self.database.table_generations()
        previous = self._table_gens
        if previous == current:
            return
        self._table_gens = current
        if previous is None:
            return
        changed = {
            name
            for name in current.keys() | previous.keys()
            if current.get(name) != previous.get(name)
        }
        self._node_results.invalidate(changed)
        if self.cache is not None:
            dropped = self.cache.invalidate_tables(
                self.database._token, changed, current
            )
            if metrics is not None and dropped:
                metrics.inc("plan_cache.invalidations", dropped)

    def cached_complete(self, plan, include_startup=True):
        """True when :attr:`cache` holds a *complete* entry for ``plan`` —
        i.e. :meth:`execute` would replay it without re-evaluating.  A
        peek: does not count as a cache request.  The resilient dispatcher
        uses this to serve cached plans without contacting the (possibly
        faulty) source."""
        if self.cache is None:
            return False
        entry = self.cache.peek(self.cache_key_for(plan, include_startup))
        return entry is not None and entry.complete

    def execute(self, plan, budget_ms=None, include_startup=True,
                metrics=None, engine=None, batch_size=None):
        """Run ``plan``; return an :class:`ExecutionResult`.

        ``budget_ms`` is a simulated-time budget (the paper's 5-minute
        per-subquery timeout); exceeding it raises
        :class:`~repro.common.errors.TimeoutExceeded`.

        ``engine`` selects the execution mode (``"batch"`` or ``"tuple"``,
        default :attr:`default_engine`) and ``batch_size`` the chunk size
        of the batch kernels — performance knobs only: results, charge
        logs, and cache entries are identical in every mode.

        With a :attr:`cache` installed, a plan already executed against the
        current database generation is *replayed* instead of re-evaluated:
        the result (rows, timings, breakdown, timeout behaviour) is
        byte-identical, only the wall-clock cost disappears.  Result rows
        may then be shared between callers and must be treated as
        immutable.

        ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) counts
        each execution once as a ``plan_cache.hits`` (served by replay) or
        ``plan_cache.misses`` (evaluated fresh, including single-flight
        leaders); executions with no cache installed count neither.
        """
        mode = self._engine_mode(engine)
        charges = _Charges(self.cost_model, budget_ms)
        if include_startup:
            charges.charge("startup", self.cost_model.startup_ms)
        return self._execute_cached(
            plan, charges, include_startup, metrics, mode,
            batch_size or self.default_batch_size,
        )

    def _evaluate(self, plan, charges, mode, batch_size, metrics):
        """Evaluate ``plan`` fresh in ``mode``; return the result rows."""
        if mode == "tuple":
            return self._eval(plan, charges)
        self._node_results.metrics = metrics
        self._refresh_dependencies(metrics)
        compiled = self._compiled_for(plan, batch_size)
        batch = compiled.run(charges)
        if metrics is not None and charges.batches:
            for label, count in charges.batches.items():
                metrics.inc(f"batch.{label}.batches", count)
        return batch.rows(batch_size)

    def _execute_cached(self, plan, charges, include_startup, metrics,
                        mode, batch_size):
        """The cache-aware evaluation core shared by :meth:`execute` and
        the batch mode of :meth:`execute_iter` (``charges`` already holds
        the startup charge when applicable)."""
        cache = self.cache
        if cache is None:
            rows = self._evaluate(plan, charges, mode, batch_size, metrics)
            return self._result(plan, rows, charges)
        # ``include_startup`` is part of the key: some charges (the
        # outer-join re-evaluation penalty) are measured as running-total
        # deltas, so their float values differ at the ulp level between the
        # two modes and a shared entry would not replay bit-identically.
        key = self.cache_key_for(plan, include_startup)
        while True:
            entry = cache.lookup(
                key, spent_ms=charges.total_ms, budget_ms=charges.budget_ms
            )
            if entry is not None:
                if metrics is not None:
                    metrics.inc("plan_cache.hits")
                charges.replay(entry.charge_log)
                # An incomplete entry is only served when the replay is
                # guaranteed to raise, so reaching here means the entry is
                # complete and ``entry.rows`` is the full result.
                return self._result(plan, entry.rows, charges)
            # Single-flight: under concurrent dispatch, N simultaneous
            # misses on the same plan run it once; the waiters loop back
            # and replay the leader's entry bit-identically.
            if cache.begin(key):
                if metrics is not None:
                    metrics.inc("plan_cache.misses")
                break
        try:
            charges.log = []
            try:
                rows = self._evaluate(plan, charges, mode, batch_size,
                                      metrics)
            except TimeoutExceeded:
                cache.store(
                    key,
                    CacheEntry(
                        rows=None,
                        charge_log=tuple(charges.log),
                        complete=False,
                        nbytes=len(charges.log) * 64,
                    ),
                )
                raise
            cache.store(
                key,
                CacheEntry(
                    rows=rows,
                    charge_log=tuple(charges.log),
                    complete=True,
                    nbytes=self._estimate_result_bytes(plan, rows, charges.log),
                ),
            )
        finally:
            cache.finish(key)
        return self._result(plan, rows, charges)

    def execute_iter(self, plan, budget_ms=None, include_startup=True,
                     metrics=None, engine=None, batch_size=None):
        """Run ``plan`` Volcano-style; return an :class:`IterResult`.

        The streaming default is the ``"tuple"`` engine regardless of
        :attr:`default_engine`: the Volcano pipeline is what bounds peak
        memory, and the batch engine materializes by construction.  Passing
        ``engine="batch"`` explicitly instead runs the (cache-aware,
        cache-*storing*) materializing core lazily on first ``next()`` and
        streams the finished result — same rows, same charge log, but
        memory proportional to the result.

        Rows are produced by a generator pipeline instead of materialized
        lists: scan → filter → project chains stream row by row, while
        sort, distinct-build, and hash-join build sides remain pipeline
        breakers that release their inputs eagerly (a consumed operator's
        frame — hash indexes, unsorted lists — is freed as soon as its
        output is drained).  Peak memory is bounded by the largest single
        pipeline-breaker state instead of the sum of every intermediate
        result, which is what lets :meth:`XmlView.materialize_to
        <repro.core.silkroute.XmlView.materialize_to>` stream arbitrarily
        large views.

        Charges use the *same* cost-model formulas as :meth:`execute`,
        accounted per operator as its stream completes.  Operators complete
        in the batch engine's evaluation order (join probe sides are
        consumed first — materialized — and sub-plans shared within the
        query are evaluated once and re-read at rescan cost), so the
        charge log is *identical* — same values, same order — and
        ``server_ms``, the breakdown, and timeout behaviour match the
        materializing path bit-for-bit.  ``budget_ms`` raises
        :class:`~repro.common.errors.TimeoutExceeded` from the consuming
        ``next()`` call rather than from ``execute_iter`` itself.

        With a :attr:`cache` installed, a hit replays the recorded charge
        log (bit-identically, on first ``next()``) and streams the cached
        rows; a *miss is not stored* — storing would require materializing
        the result, defeating the constant-memory path.
        """
        mode = self._engine_mode(engine or "tuple")
        if mode == "batch":
            charges = _Charges(self.cost_model, budget_ms)
            result = IterResult(plan.columns(), charges)

            def batch_rows():
                if include_startup:
                    charges.charge("startup", self.cost_model.startup_ms)
                executed = self._execute_cached(
                    plan, charges, include_startup, metrics, "batch",
                    batch_size or self.default_batch_size,
                )
                yield from executed.rows
            result._attach(batch_rows())
            return result
        charges = _Charges(self.cost_model, budget_ms)
        if include_startup:
            charges.charge("startup", self.cost_model.startup_ms)
        result = IterResult(plan.columns(), charges)
        cache = self.cache
        if cache is not None:
            key = self.cache_key_for(plan, include_startup)
            entry = cache.lookup(
                key, spent_ms=charges.total_ms, budget_ms=budget_ms
            )
            if entry is not None:
                if metrics is not None:
                    metrics.inc("plan_cache.hits")

                def replay_rows():
                    charges.replay(entry.charge_log)
                    yield from entry.rows
                result._attach(replay_rows())
                return result
            if metrics is not None:
                metrics.inc("plan_cache.misses")

        def stream_rows():
            shared = _shared_fingerprints(plan)
            try:
                yield from self._stream(plan, charges, shared)
            finally:
                charges.memo.clear()
        result._attach(stream_rows())
        return result

    def _result(self, plan, rows, charges):
        return ExecutionResult(
            columns=plan.columns(),
            rows=rows,
            server_ms=charges.total_ms,
            rows_examined=charges.rows_examined,
            breakdown=charges.breakdown,
        )

    def _estimate_result_bytes(self, plan, rows, log):
        overhead = 128 + len(log) * 64
        if not rows:
            return overhead
        avg = self._row_bytes_for(
            plan.fingerprint(), plan.columns(), rows, self.tables_for(plan)
        )
        # ~56 bytes of tuple/pointer overhead per row in CPython.
        return overhead + len(rows) * (avg + 56 + 8 * len(plan.columns()))

    # -- operator evaluation ------------------------------------------------

    def _eval(self, op, charges):
        """Evaluate one operator, sharing identical sub-plans within this
        query execution (the optimizer's common-subexpression reuse)."""
        key = op.fingerprint()
        if key in charges.memo:
            rows = charges.memo[key]
            charges.memo_hits += 1
            charges.charge(
                "rescan", len(rows) * self.cost_model.rescan_row_ms, len(rows)
            )
            return rows
        rows = self._eval_fresh(op, charges)
        charges.memo[key] = rows
        return rows

    def _eval_fresh(self, op, charges):
        if isinstance(op, Scan):
            return self._eval_scan(op, charges)
        if isinstance(op, Filter):
            return self._eval_filter(op, charges)
        if isinstance(op, Project):
            return self._eval_project(op, charges)
        if isinstance(op, Distinct):
            return self._eval_distinct(op, charges)
        if isinstance(op, InnerJoin):
            return self._eval_inner_join(op, charges)
        if isinstance(op, LeftOuterJoin):
            return self._eval_outer_join(op, charges)
        if isinstance(op, OuterUnion):
            return self._eval_union(op, charges)
        if isinstance(op, Sort):
            return self._eval_sort(op, charges)
        raise ExecutionError(f"cannot execute operator {op!r}")

    def _eval_scan(self, op, charges):
        table = self.database.table(op.table_schema.name)
        rows = list(table.rows)
        charges.charge("scan", len(rows) * self.cost_model.scan_row_ms, len(rows))
        return rows

    @staticmethod
    def _compiled_predicate(op):
        """The filter's predicate compiled to a ``row -> bool`` closure,
        once per operator instance (plans are immutable, so the closure is
        reused across executions and engines)."""
        predicate = getattr(op, "_row_predicate", None)
        if predicate is None:
            predicate = algebra.compile_predicate(
                op.predicate, op.child.positions()
            )
            op._row_predicate = predicate
        return predicate

    def _eval_filter(self, op, charges):
        rows = self._eval(op.child, charges)
        predicate = self._compiled_predicate(op)
        out = [r for r in rows if predicate(r)]
        charges.charge("filter", len(rows) * self.cost_model.filter_row_ms, len(rows))
        return out

    def _eval_project(self, op, charges):
        rows = self._eval(op.child, charges)
        positions = op.child.positions()
        plan = []
        all_columns = True
        for item in op.items:
            if isinstance(item.expr, ColumnRef):
                plan.append((True, positions[item.expr.name]))
            elif isinstance(item.expr, Literal):
                plan.append((False, item.expr.value))
                all_columns = False
            else:
                raise ExecutionError(f"unsupported projection {item.expr!r}")
        if all_columns:
            indices = [p for _, p in plan]
            if len(indices) == 1:
                p = indices[0]
                out = [(row[p],) for row in rows]
            elif indices:
                getter = itemgetter(*indices)
                out = [getter(row) for row in rows]
            else:
                out = [() for _ in rows]
        else:
            out = [
                tuple(row[p] if is_col else p for is_col, p in plan)
                for row in rows
            ]
        charges.charge("project", len(rows) * self.cost_model.project_row_ms, len(rows))
        return out

    def _eval_distinct(self, op, charges):
        rows = self._eval(op.child, charges)
        seen = set()
        out = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        charges.charge("distinct", len(rows) * self.cost_model.hash_row_ms, len(rows))
        return out

    def _eval_inner_join(self, op, charges):
        left_rows = self._eval(op.left, charges)
        right_rows = self._eval(op.right, charges)
        left_pos = op.left.positions()
        right_pos = op.right.positions()
        build_get, build_single = _key_plan(
            [right_pos[r] for _, r in op.equalities]
        )
        probe_get, probe_single = _key_plan(
            [left_pos[l] for l, _ in op.equalities]
        )
        index = _hash_index(right_rows, build_get, build_single)
        out = []
        append = out.append
        lookup = index.get
        if probe_single:
            for row in left_rows:
                key = probe_get(row)
                if key is None:
                    continue
                for match in lookup(key, ()):
                    append(row + match)
        else:
            for row in left_rows:
                key = probe_get(row)
                if None in key:
                    continue
                for match in lookup(key, ()):
                    append(row + match)
        model = self.cost_model
        charges.charge(
            "join",
            len(right_rows) * model.hash_row_ms
            + len(left_rows) * model.probe_row_ms
            + len(out) * model.join_out_row_ms,
            len(left_rows) + len(right_rows),
        )
        return out

    def _eval_outer_join(self, op, charges):
        left_rows = self._eval(op.left, charges)
        right_start_ms = charges.total_ms
        right_rows = self._eval(op.right, charges)
        right_cost_ms = charges.total_ms - right_start_ms
        left_pos = op.left.positions()
        right_pos = op.right.positions()
        null_pad = (None,) * len(op.right.columns())

        branch_indexes = []
        build_work = 0
        for branch in op.branches:
            build_get, build_single = _key_plan(
                [right_pos[r] for _, r in branch.equalities]
            )
            tag_position = (
                right_pos[branch.tag_column] if branch.tag_column is not None else None
            )
            if tag_position is None:
                candidates = right_rows
            else:
                tag_value = branch.tag_value
                candidates = [
                    row for row in right_rows if row[tag_position] == tag_value
                ]
            index = _hash_index(candidates, build_get, build_single)
            build_work += sum(len(bucket) for bucket in index.values())
            probe_get, probe_single = _key_plan(
                [left_pos[l] for l, _ in branch.equalities]
            )
            branch_indexes.append((probe_get, probe_single, index))

        out = []
        append = out.append
        for row in left_rows:
            matched = False
            for probe_get, probe_single, index in branch_indexes:
                key = probe_get(row)
                if (key is None) if probe_single else (None in key):
                    continue
                for match in index.get(key, ()):
                    append(row + match)
                    matched = True
            if not matched:
                append(row + null_pad)

        model = self.cost_model
        charges.charge(
            "outer_join",
            build_work * model.hash_row_ms
            + len(left_rows) * len(op.branches) * model.probe_row_ms
            + len(out) * model.join_out_row_ms,
            len(left_rows) + len(right_rows),
        )
        if algebra.outer_join_nesting(op.right) >= model.reevaluation_threshold:
            # The optimizer cannot flatten the deeply nested derived table:
            # it re-evaluates the right side for every outer row.  The
            # charge is in already-scaled ms, so divide the speed back out.
            reevaluations = max(len(left_rows) - 1, 0)
            penalty = reevaluations * right_cost_ms * model.reevaluation_factor
            if model.speed:
                penalty /= model.speed
            charges.charge("outer_join_reevaluation", penalty)
        return out

    def _eval_union(self, op, charges):
        out_columns = op.column_names()
        out = []
        for child in op.inputs:
            rows = self._eval(child, charges)
            child_names = child.column_names()
            mapping = {name: i for i, name in enumerate(child_names)}
            slots = [mapping.get(name) for name in out_columns]
            for row in rows:
                out.append(tuple(None if s is None else row[s] for s in slots))
        if op.distinct:
            seen = set()
            deduped = []
            for row in out:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            out = deduped
        charges.charge("union", len(out) * self.cost_model.union_row_ms, len(out))
        return out

    def _eval_sort(self, op, charges):
        rows = self._eval(op.child, charges)
        positions = op.child.positions()
        key_positions = [positions[k] for k in op.keys]
        if len(key_positions) == 1:
            p = key_positions[0]
            out = sorted(rows, key=lambda r: NoneFirst(r[p]))
        elif key_positions:
            getter = itemgetter(*key_positions)
            out = sorted(rows, key=lambda r: sort_key(getter(r)))
        else:
            out = list(rows)

        model = self.cost_model
        n = len(rows)
        if n:
            row_bytes = self._row_bytes_for(
                op.child.fingerprint(), op.child.columns(), rows,
                self.tables_for(op.child),
            )
            comparisons = n * math.log2(n + 1)
            cost = comparisons * model.sort_cmp_ms * (
                1.0 + row_bytes / model.sort_width_norm
            )
            total_bytes = n * row_bytes
            if total_bytes > model.sort_memory_bytes:
                overflow = total_bytes / model.sort_memory_bytes - 1.0
                cost *= 1.0 + model.spill_factor * overflow
            charges.charge("sort", cost, n)
        return out

    # -- streaming (Volcano-style) evaluation -------------------------------
    #
    # Each operator is a generator applying the *same* cost-model formulas
    # as its batch twin, charged when its stream completes (the generator
    # chain unwinds bottom-up, so a pipelined scan→filter→project charges
    # in the batch order).  Sub-plans occurring more than once in the query
    # (``shared``) are batch-evaluated into the per-execution memo on first
    # use, exactly like the optimizer's common-subexpression sharing —
    # re-reading a stream twice is impossible without materializing it.

    def _stream(self, op, charges, shared):
        key = op.fingerprint()
        if key in charges.memo:
            rows = charges.memo[key]
            charges.memo_hits += 1
            charges.charge(
                "rescan", len(rows) * self.cost_model.rescan_row_ms, len(rows)
            )
            yield from rows
            return
        if key in shared:
            yield from self._eval(op, charges)
            return
        yield from self._stream_fresh(op, charges, shared)

    def _stream_fresh(self, op, charges, shared):
        if isinstance(op, Scan):
            return self._stream_scan(op, charges)
        if isinstance(op, Filter):
            return self._stream_filter(op, charges, shared)
        if isinstance(op, Project):
            return self._stream_project(op, charges, shared)
        if isinstance(op, Distinct):
            return self._stream_distinct(op, charges, shared)
        if isinstance(op, InnerJoin):
            return self._stream_inner_join(op, charges, shared)
        if isinstance(op, LeftOuterJoin):
            return self._stream_outer_join(op, charges, shared)
        if isinstance(op, OuterUnion):
            return self._stream_union(op, charges, shared)
        if isinstance(op, Sort):
            return self._stream_sort(op, charges, shared)
        raise ExecutionError(f"cannot execute operator {op!r}")

    def _stream_scan(self, op, charges):
        rows = self.database.table(op.table_schema.name).rows
        charges.charge("scan", len(rows) * self.cost_model.scan_row_ms, len(rows))
        yield from rows

    def _stream_filter(self, op, charges, shared):
        predicate = self._compiled_predicate(op)
        n = 0
        for row in self._stream(op.child, charges, shared):
            n += 1
            if predicate(row):
                yield row
        charges.charge("filter", n * self.cost_model.filter_row_ms, n)

    def _stream_project(self, op, charges, shared):
        positions = op.child.positions()
        plan = []
        all_columns = True
        for item in op.items:
            if isinstance(item.expr, ColumnRef):
                plan.append((True, positions[item.expr.name]))
            elif isinstance(item.expr, Literal):
                plan.append((False, item.expr.value))
                all_columns = False
            else:
                raise ExecutionError(f"unsupported projection {item.expr!r}")
        n = 0
        child = self._stream(op.child, charges, shared)
        if all_columns:
            indices = [p for _, p in plan]
            if len(indices) == 1:
                p = indices[0]
                for row in child:
                    n += 1
                    yield (row[p],)
            elif indices:
                getter = itemgetter(*indices)
                for row in child:
                    n += 1
                    yield getter(row)
            else:
                for row in child:
                    n += 1
                    yield ()
        else:
            for row in child:
                n += 1
                yield tuple(row[p] if is_col else p for is_col, p in plan)
        charges.charge("project", n * self.cost_model.project_row_ms, n)

    def _stream_distinct(self, op, charges, shared):
        seen = set()
        n = 0
        for row in self._stream(op.child, charges, shared):
            n += 1
            if row not in seen:
                seen.add(row)
                yield row
        charges.charge("distinct", n * self.cost_model.hash_row_ms, n)

    def _stream_inner_join(self, op, charges, shared):
        # The probe (left) side is consumed *first and materialized*: the
        # batch engine evaluates left before right, and matching that order
        # keeps the memo's common-subexpression assignments — hence the
        # whole charge log — bit-identical.  The build side streams into
        # its hash index and the join output is never held.
        left_rows = list(self._stream(op.left, charges, shared))
        left_pos = op.left.positions()
        right_pos = op.right.positions()
        build_get, build_single = _key_plan(
            [right_pos[r] for _, r in op.equalities]
        )
        probe_get, probe_single = _key_plan(
            [left_pos[l] for l, _ in op.equalities]
        )
        index = {}
        setdefault = index.setdefault
        n_right = 0
        for row in self._stream(op.right, charges, shared):
            n_right += 1
            key = build_get(row)
            if (key is None) if build_single else (None in key):
                continue
            setdefault(key, []).append(row)
        lookup = index.get
        n_out = 0
        for i in range(len(left_rows)):
            row = left_rows[i]
            left_rows[i] = None
            key = probe_get(row)
            if (key is None) if probe_single else (None in key):
                continue
            for match in lookup(key, ()):
                n_out += 1
                yield row + match
        model = self.cost_model
        charges.charge(
            "join",
            n_right * model.hash_row_ms
            + len(left_rows) * model.probe_row_ms
            + n_out * model.join_out_row_ms,
            len(left_rows) + n_right,
        )

    def _stream_outer_join(self, op, charges, shared):
        # As in the inner join: left (probe) side first and materialized to
        # mirror the batch engine's evaluation — and charge — order; the
        # right side (the derived table) streams into the per-branch
        # indexes in one pass, and the joined output is never held.
        left_rows = list(self._stream(op.left, charges, shared))
        left_pos = op.left.positions()
        right_pos = op.right.positions()
        null_pad = (None,) * len(op.right.columns())

        branch_builds = []
        for branch in op.branches:
            build_get, build_single = _key_plan(
                [right_pos[r] for _, r in branch.equalities]
            )
            tag_position = (
                right_pos[branch.tag_column]
                if branch.tag_column is not None else None
            )
            probe_get, probe_single = _key_plan(
                [left_pos[l] for l, _ in branch.equalities]
            )
            branch_builds.append(
                (build_get, build_single, tag_position, branch.tag_value,
                 probe_get, probe_single, {})
            )

        right_start_ms = charges.total_ms
        n_right = 0
        build_work = 0
        for row in self._stream(op.right, charges, shared):
            n_right += 1
            for (build_get, build_single, tag_position, tag_value,
                 _, _, index) in branch_builds:
                if tag_position is not None and row[tag_position] != tag_value:
                    continue
                key = build_get(row)
                if (key is None) if build_single else (None in key):
                    continue
                index.setdefault(key, []).append(row)
                build_work += 1
        right_cost_ms = charges.total_ms - right_start_ms

        n_out = 0
        for i in range(len(left_rows)):
            row = left_rows[i]
            left_rows[i] = None
            matched = False
            for (_, _, _, _, probe_get, probe_single, index) in branch_builds:
                key = probe_get(row)
                if (key is None) if probe_single else (None in key):
                    continue
                for match in index.get(key, ()):
                    n_out += 1
                    yield row + match
                    matched = True
            if not matched:
                n_out += 1
                yield row + null_pad

        model = self.cost_model
        charges.charge(
            "outer_join",
            build_work * model.hash_row_ms
            + len(left_rows) * len(op.branches) * model.probe_row_ms
            + n_out * model.join_out_row_ms,
            len(left_rows) + n_right,
        )
        if algebra.outer_join_nesting(op.right) >= model.reevaluation_threshold:
            reevaluations = max(len(left_rows) - 1, 0)
            penalty = reevaluations * right_cost_ms * model.reevaluation_factor
            if model.speed:
                penalty /= model.speed
            charges.charge("outer_join_reevaluation", penalty)

    def _stream_union(self, op, charges, shared):
        out_columns = op.column_names()
        seen = set() if op.distinct else None
        n_out = 0
        for child in op.inputs:
            child_names = child.column_names()
            mapping = {name: i for i, name in enumerate(child_names)}
            slots = [mapping.get(name) for name in out_columns]
            for row in self._stream(child, charges, shared):
                out = tuple(None if s is None else row[s] for s in slots)
                if seen is not None:
                    if out in seen:
                        continue
                    seen.add(out)
                n_out += 1
                yield out
        charges.charge("union", n_out * self.cost_model.union_row_ms, n_out)

    def _stream_sort(self, op, charges, shared):
        rows = list(self._stream(op.child, charges, shared))
        positions = op.child.positions()
        key_positions = [positions[k] for k in op.keys]
        if len(key_positions) == 1:
            p = key_positions[0]
            out = sorted(rows, key=lambda r: NoneFirst(r[p]))
        elif key_positions:
            getter = itemgetter(*key_positions)
            out = sorted(rows, key=lambda r: sort_key(getter(r)))
        else:
            out = rows

        model = self.cost_model
        n = len(rows)
        if n:
            row_bytes = self._row_bytes_for(
                op.child.fingerprint(), op.child.columns(), rows,
                self.tables_for(op.child),
            )
            comparisons = n * math.log2(n + 1)
            cost = comparisons * model.sort_cmp_ms * (
                1.0 + row_bytes / model.sort_width_norm
            )
            total_bytes = n * row_bytes
            if total_bytes > model.sort_memory_bytes:
                overflow = total_bytes / model.sort_memory_bytes - 1.0
                cost *= 1.0 + model.spill_factor * overflow
            charges.charge("sort", cost, n)
        del rows
        # Drain destructively: a consumed row's slot is released so fully
        # tagged prefixes of an arbitrarily large stream can be collected
        # while the tail is still being merged.
        for i in range(len(out)):
            row = out[i]
            out[i] = None
            yield row

    @staticmethod
    def _average_row_bytes(columns, rows, sample=500):
        # Sample evenly: consecutive rows share a document-order prefix and
        # are unrepresentative (e.g. the narrow supplier rows come first).
        stride = max(len(rows) // sample, 1)
        sampled = rows[::stride]
        width_fns = [width_function(col.sql_type) for col in columns]
        total = 0
        for row in sampled:
            for fn, value in zip(width_fns, row):
                if value is None:
                    total += 1  # null marker
                else:
                    total += fn(value)
        return total / len(sampled)
