"""Measurement-calibrated cost estimation against a real backend.

The simulated :class:`~repro.relational.engine.CostModel` carries hand-set
constants shaped after the paper's Configuration A/B hardware.  With a
real backend available (:mod:`repro.relational.backends`), those constants
can instead be *fitted to measurement*: execute a sweep of generated
partition SQL on SQLite, record each statement's wall-clock, and solve a
small least-squares system relating the simulated engine's per-operator
charge breakdown to the measured walls.

The fit is per *charge group*, not per raw constant — several constants
always appear together in a plan's breakdown (hash build, probe, and join
output rows, for instance), so they are scaled jointly:

===========  =====================================================
group        cost-model constants scaled by the fitted factor
===========  =====================================================
startup      ``startup_ms``
scan         ``scan_row_ms``
filter       ``filter_row_ms``
project      ``project_row_ms``
hash         ``hash_row_ms``, ``probe_row_ms``, ``join_out_row_ms``
union        ``union_row_ms``
sort         ``sort_cmp_ms``
rescan       ``rescan_row_ms``
reevaluation ``reevaluation_factor``
===========  =====================================================

Solving uses plain normal equations with a small ridge pulling every
scale toward 1.0 (the identity), so a group the sweep never exercises
keeps its hand-set constant instead of drifting to an arbitrary value.
No numpy — the system is 9×9 and Gaussian elimination suffices.

The result is a :class:`CalibratedCostModel`: a frozen *subclass* of
:class:`~repro.relational.engine.CostModel`, so it drops into every slot
a cost model fits — :class:`~repro.relational.connection.Connection`,
:class:`~repro.relational.estimator.CostEstimator`, the greedy planner —
and, because dataclass equality is class-aware, plans executed under a
calibrated model never collide with cached results computed under the
default model (distinct fingerprints, no stale cross-model hits).
"""

from dataclasses import dataclass, fields
from statistics import median

from repro.common.errors import QueryError
from repro.relational.engine import CostModel

#: Fitted charge groups, in solve order.
CALIBRATION_GROUPS = (
    "startup", "scan", "filter", "project", "hash", "union", "sort",
    "rescan", "reevaluation",
)

#: Engine breakdown label → charge group.
_LABEL_GROUP = {
    "startup": "startup",
    "scan": "scan",
    "filter": "filter",
    "project": "project",
    "distinct": "hash",
    "join": "hash",
    "outer_join": "hash",
    "union": "union",
    "sort": "sort",
    "rescan": "rescan",
    "outer_join_reevaluation": "reevaluation",
}

#: Charge group → cost-model constants it scales.
_GROUP_CONSTANTS = {
    "startup": ("startup_ms",),
    "scan": ("scan_row_ms",),
    "filter": ("filter_row_ms",),
    "project": ("project_row_ms",),
    "hash": ("hash_row_ms", "probe_row_ms", "join_out_row_ms"),
    "union": ("union_row_ms",),
    "sort": ("sort_cmp_ms",),
    "rescan": ("rescan_row_ms",),
    "reevaluation": ("reevaluation_factor",),
}


@dataclass(frozen=True)
class CalibratedCostModel(CostModel):
    """A :class:`~repro.relational.engine.CostModel` whose constants were
    fitted to measured backend walls.

    Behaves exactly like its base everywhere a cost model is accepted.
    The distinct class is load-bearing: dataclass ``__eq__`` compares
    classes first, so a calibrated model never compares equal to a
    default :class:`CostModel` with coincidentally identical constants —
    plan caches and estimator memos keyed on the model stay segregated.

    ``calibrated_on`` names the backend the fit measured (``"sqlite"``);
    ``calibration_scales`` records the fitted per-group factors, in
    :data:`CALIBRATION_GROUPS` order, for provenance.
    """

    calibrated_on: str = "sqlite"
    calibration_scales: tuple = ()


def group_features(breakdown):
    """Fold an engine charge ``breakdown`` (label → simulated ms) into the
    per-group feature vector the fit runs on: a dict over
    :data:`CALIBRATION_GROUPS` (missing groups are 0.0)."""
    features = dict.fromkeys(CALIBRATION_GROUPS, 0.0)
    for label, ms in breakdown.items():
        group = _LABEL_GROUP.get(label)
        if group is None:
            raise QueryError(
                f"unknown charge label {label!r} in execution breakdown"
            )
        features[group] += ms
    return features


@dataclass(frozen=True)
class CalibrationObservation:
    """One sweep point: a stream's simulated charge features and its
    measured wall on the backend (median over the repeats)."""

    label: str
    features: dict
    wall_ms: float


@dataclass
class CalibrationResult:
    """The fitted model plus everything needed to audit the fit."""

    model: CalibratedCostModel
    scales: dict
    observations: list

    def predicted_wall_ms(self, observation):
        """The fitted model's wall prediction for one observation."""
        return predict_wall_ms(observation.features, self.scales)

    def residuals(self):
        """Per-observation (label, predicted_ms, measured_ms) triples."""
        return [
            (obs.label, self.predicted_wall_ms(obs), obs.wall_ms)
            for obs in self.observations
        ]


def measure_streams(connection, specs, backend, repeats=3):
    """Execute every spec on the simulated engine (for its charge
    breakdown) and on ``backend`` ``repeats`` times (for its wall);
    return :class:`CalibrationObservation` per spec.

    The wall is the median over the repeats — SQLite statements at this
    scale run in microseconds, where a single sample is mostly noise.
    The first backend run doubles as the cross-validation pass: rows are
    checked against the simulated oracle like any backend execution.
    """
    from repro.relational.backends.base import align_backend_rows

    observations = []
    for spec in specs:
        result = connection.engine.execute(spec.plan)
        walls = []
        for attempt in range(max(1, repeats)):
            rows, wall_ms = backend.execute_sql(spec.plan, spec.sql)
            if attempt == 0:
                align_backend_rows(
                    spec.plan, result.rows, rows, backend.name,
                    label=spec.label, sql=spec.sql,
                )
            walls.append(wall_ms)
        observations.append(CalibrationObservation(
            label=spec.label,
            features=group_features(result.breakdown),
            wall_ms=median(walls),
        ))
    return observations


def fit_scales(observations, ridge=1e-3, prior=1.0):
    """Fit one non-negative scale per charge group by ridge-regularized
    least squares over ``observations``.

    Minimizes ``sum_i (sum_g s_g * f_gi - wall_i)^2 +
    ridge * sum_g (s_g - prior)^2``: the ridge pulls every scale toward
    ``prior`` (1.0 — keep the hand-set constant), which both conditions
    the normal equations and pins groups the sweep never exercises.
    Fitted scales are clamped at 0 (a negative per-row cost is
    meaningless measurement noise).  Returns ``{group: scale}``.
    """
    n = len(CALIBRATION_GROUPS)
    ata = [[0.0] * n for _ in range(n)]
    atb = [0.0] * n
    for obs in observations:
        row = [obs.features.get(g, 0.0) for g in CALIBRATION_GROUPS]
        for i in range(n):
            if row[i] == 0.0:
                continue
            atb[i] += row[i] * obs.wall_ms
            for j in range(n):
                ata[i][j] += row[i] * row[j]
    # Ridge toward the prior: (AtA + rI) s = Atb + r*prior.
    for i in range(n):
        ata[i][i] += ridge
        atb[i] += ridge * prior
    solution = _solve(ata, atb)
    return {
        group: max(0.0, scale)
        for group, scale in zip(CALIBRATION_GROUPS, solution)
    }


def _solve(matrix, vector):
    """Gaussian elimination with partial pivoting on a copy (the system
    is 9×9 and positive definite after the ridge)."""
    n = len(vector)
    a = [list(row) + [v] for row, v in zip(matrix, vector)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            raise QueryError("singular calibration system (no observations?)")
        a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, n):
            factor = a[row][col] / a[col][col]
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                a[row][k] -= factor * a[col][k]
    solution = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = a[row][n] - sum(
            a[row][k] * solution[k] for k in range(row + 1, n)
        )
        solution[row] = acc / a[row][row]
    return solution


def predict_wall_ms(features, scales):
    """The linear model's wall prediction for one feature vector."""
    return sum(
        scales.get(group, 1.0) * features.get(group, 0.0)
        for group in CALIBRATION_GROUPS
    )


def apply_scales(cost_model, scales, backend_name="sqlite"):
    """``cost_model`` with each group's constants multiplied by its
    fitted scale, as a :class:`CalibratedCostModel`."""
    values = {
        f.name: getattr(cost_model, f.name) for f in fields(CostModel)
    }
    for group, constants in _GROUP_CONSTANTS.items():
        scale = scales.get(group)
        if scale is None:
            continue
        for constant in constants:
            values[constant] = values[constant] * scale
    return CalibratedCostModel(
        calibrated_on=backend_name,
        calibration_scales=tuple(
            round(scales.get(g, 1.0), 9) for g in CALIBRATION_GROUPS
        ),
        **values,
    )


def calibrate(connection, specs, backend=None, repeats=3, ridge=1e-3):
    """Sweep ``specs`` on a real backend and fit the connection's cost
    model to the measured walls; returns a :class:`CalibrationResult`.

    ``backend`` defaults to a fresh in-memory
    :class:`~repro.relational.backends.SqliteBackend` over the
    connection's database.  ``specs`` are
    :class:`~repro.core.sqlgen.StreamSpec` objects — typically the
    streams of several partitions of a view
    (:meth:`~repro.core.silkroute.XmlView.enumerate_partitions` +
    :class:`~repro.core.sqlgen.SqlGenerator`), so the sweep exercises
    everything from the unified plan's wide outer joins to the fully
    partitioned plan's many small scans.
    """
    from repro.relational.backends.base import resolve_backend

    backend = resolve_backend(backend or "sqlite", connection.database)
    observations = measure_streams(connection, specs, backend, repeats)
    scales = fit_scales(observations, ridge=ridge)
    model = apply_scales(
        connection.engine.cost_model, scales, backend_name=backend.name
    )
    return CalibrationResult(
        model=model, scales=scales, observations=observations
    )


def plan_agreement(predicted_costs, measured_walls):
    """How well a cost model's per-plan predictions order the plans like
    the measurements do.

    ``predicted_costs`` and ``measured_walls`` are parallel sequences
    (one entry per candidate plan).  Returns a dict with ``top1`` (did
    the model pick the measured-cheapest plan) and ``concordance`` (the
    fraction of plan pairs ordered the same way by prediction and
    measurement — Kendall-style, ties count as half).
    """
    n = len(predicted_costs)
    if n != len(measured_walls):
        raise QueryError(
            f"{n} predictions for {len(measured_walls)} measurements"
        )
    if n == 0:
        return {"top1": False, "concordance": 0.0}
    best_predicted = min(range(n), key=lambda i: predicted_costs[i])
    best_measured = min(range(n), key=lambda i: measured_walls[i])
    pairs = concordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            predicted = predicted_costs[i] - predicted_costs[j]
            measured = measured_walls[i] - measured_walls[j]
            if predicted == 0.0 or measured == 0.0:
                concordant += 0.5
            elif (predicted > 0) == (measured > 0):
                concordant += 1
    return {
        "top1": best_predicted == best_measured,
        "concordance": concordant / pairs if pairs else 1.0,
    }


__all__ = [
    "CALIBRATION_GROUPS",
    "CalibratedCostModel",
    "CalibrationObservation",
    "CalibrationResult",
    "apply_scales",
    "calibrate",
    "fit_scales",
    "group_features",
    "measure_streams",
    "plan_agreement",
    "predict_wall_ms",
]
