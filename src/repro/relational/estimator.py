"""Cardinality and cost estimation — the middle-ware's "RDBMS oracle".

Sec. 5 of the paper: *"The only reliable source of query costs is the target
RDBMs ... The RDBMs serves as an oracle, providing the values for the
functions evaluation_cost and cardinality."*  This module plays that oracle:
it walks an algebra plan and predicts cardinality, average row width, and
evaluation cost using the same formulas as the executing engine, but fed by
table statistics instead of actual rows.

Estimates are cached by structural plan fingerprint; the cache also counts
*oracle requests*, reproducing the paper's observation (Sec. 5.1) that the
greedy algorithm issues far fewer estimate requests than the worst case
because combined queries recur.
"""

import math
from dataclasses import dataclass

from repro.common.errors import QueryError
from repro.relational import algebra
from repro.relational.algebra import (
    Scan,
    Filter,
    Project,
    Distinct,
    InnerJoin,
    LeftOuterJoin,
    OuterUnion,
    Sort,
    ColumnRef,
    Comparison,
)

#: Default selectivity for a comparison against a literal when no better
#: information is available (the classic System R magic constant).
DEFAULT_LITERAL_SELECTIVITY = 0.1


@dataclass(frozen=True)
class Estimate:
    """Estimated properties of one plan."""

    cardinality: float
    row_width: float
    server_ms: float
    distincts: dict

    def distinct(self, column, default=None):
        value = self.distincts.get(column)
        if value is None:
            return default if default is not None else max(self.cardinality, 1.0)
        return value


class EstimateCache:
    """Fingerprint-keyed cache of :class:`Estimate` with a request counter.

    ``requests`` counts cache *misses* — the calls that would actually reach
    the RDBMS optimizer.  ``hits`` counts avoided round trips.
    """

    def __init__(self):
        self._cache = {}
        self.requests = 0
        self.hits = 0

    def get_or_compute(self, key, compute):
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.requests += 1
        value = compute()
        self._cache[key] = value
        return value

    def clear(self):
        self._cache.clear()
        self.requests = 0
        self.hits = 0


class CostEstimator:
    """Estimates cardinality and evaluation cost for algebra plans."""

    def __init__(self, database, cost_model, cache=None):
        self.database = database
        self.cost_model = cost_model
        self.cache = cache if cache is not None else EstimateCache()

    # -- public oracle API (the two functions of the paper's Sec. 5) -------

    def evaluation_cost(self, plan):
        """Estimated server-side evaluation cost in simulated ms."""
        return self.estimate(plan).server_ms

    def cardinality(self, plan):
        """Estimated number of result rows."""
        return self.estimate(plan).cardinality

    def data_size(self, plan):
        """The paper's ``data_size = f(|attrs(q)| * cardinality(q))``, with
        ``f`` = identity scaled by the average attribute width."""
        est = self.estimate(plan)
        n_attrs = len(plan.columns())
        return n_attrs * est.cardinality

    def estimate(self, plan):
        return self.cache.get_or_compute(
            plan.fingerprint(), lambda: self._estimate(plan)
        )

    # -- estimation walk ----------------------------------------------------

    def _estimate(self, op):
        if isinstance(op, Scan):
            return self._estimate_scan(op)
        if isinstance(op, Filter):
            return self._estimate_filter(op)
        if isinstance(op, Project):
            return self._estimate_project(op)
        if isinstance(op, Distinct):
            return self._estimate_distinct(op)
        if isinstance(op, InnerJoin):
            return self._estimate_inner_join(op)
        if isinstance(op, LeftOuterJoin):
            return self._estimate_outer_join(op)
        if isinstance(op, OuterUnion):
            return self._estimate_union(op)
        if isinstance(op, Sort):
            return self._estimate_sort(op)
        raise QueryError(f"cannot estimate operator {op!r}")

    def _estimate_scan(self, op):
        stats = self.database.stats(op.table_schema.name)
        distincts = {}
        width = 0.0
        for col in op.columns():
            col_stats = stats.column(col.source[1])
            distincts[col.name] = float(max(col_stats.n_distinct, 1))
            width += max(col_stats.avg_width, 1.0)
        card = float(stats.row_count)
        model = self.cost_model
        return Estimate(
            cardinality=card,
            row_width=width,
            server_ms=model.scaled(card * model.scan_row_ms),
            distincts=distincts,
        )

    def _estimate_filter(self, op):
        child = self.estimate(op.child)
        selectivity = self._predicate_selectivity(op.predicate, child)
        card = child.cardinality * selectivity
        model = self.cost_model
        return Estimate(
            cardinality=card,
            row_width=child.row_width,
            server_ms=child.server_ms
            + model.scaled(child.cardinality * model.filter_row_ms),
            distincts=_cap_distincts(child.distincts, card),
        )

    def _predicate_selectivity(self, predicate, child_estimate):
        comparisons = (
            predicate.conjuncts if hasattr(predicate, "conjuncts") else (predicate,)
        )
        selectivity = 1.0
        for cmp in comparisons:
            selectivity *= self._comparison_selectivity(cmp, child_estimate)
        return selectivity

    def _comparison_selectivity(self, cmp, child_estimate):
        if not isinstance(cmp, Comparison):
            return DEFAULT_LITERAL_SELECTIVITY
        left_col = isinstance(cmp.left, ColumnRef)
        right_col = isinstance(cmp.right, ColumnRef)
        if cmp.op == "=":
            if left_col and right_col:
                d = max(
                    child_estimate.distinct(cmp.left.name),
                    child_estimate.distinct(cmp.right.name),
                )
                return 1.0 / max(d, 1.0)
            if left_col or right_col:
                name = cmp.left.name if left_col else cmp.right.name
                return 1.0 / max(child_estimate.distinct(name), 1.0)
        if cmp.op == "!=":
            return 1.0 - self._comparison_selectivity(
                Comparison("=", cmp.left, cmp.right), child_estimate
            )
        return 1.0 / 3.0  # range predicates

    def _estimate_project(self, op):
        child = self.estimate(op.child)
        distincts = {}
        width = 0.0
        for item in op.items:
            if isinstance(item.expr, ColumnRef):
                distincts[item.name] = child.distinct(item.expr.name)
                width += _column_width_estimate(
                    op, item.name, child, item.expr.name
                )
            else:
                distincts[item.name] = 1.0
                width += 4.0
        model = self.cost_model
        return Estimate(
            cardinality=child.cardinality,
            row_width=width,
            server_ms=child.server_ms
            + model.scaled(child.cardinality * model.project_row_ms),
            distincts=distincts,
        )

    def _estimate_distinct(self, op):
        child = self.estimate(op.child)
        # Node queries project onto Skolem-term arguments, which include the
        # keys of every in-scope tuple variable, so duplicates are rare:
        # assume DISTINCT keeps the cardinality (a mild overestimate).
        model = self.cost_model
        return Estimate(
            cardinality=child.cardinality,
            row_width=child.row_width,
            server_ms=child.server_ms
            + model.scaled(child.cardinality * model.hash_row_ms),
            distincts=dict(child.distincts),
        )

    def _join_selectivity(self, equalities, left, right):
        selectivity = 1.0
        for l, r in equalities:
            d = max(left.distinct(l), right.distinct(r))
            selectivity *= 1.0 / max(d, 1.0)
        return selectivity

    def _estimate_inner_join(self, op):
        left = self.estimate(op.left)
        right = self.estimate(op.right)
        selectivity = self._join_selectivity(op.equalities, left, right)
        card = left.cardinality * right.cardinality * selectivity
        model = self.cost_model
        cost = left.server_ms + right.server_ms + model.scaled(
            right.cardinality * model.hash_row_ms
            + left.cardinality * model.probe_row_ms
            + card * model.join_out_row_ms
        )
        distincts = _cap_distincts({**left.distincts, **right.distincts}, card)
        return Estimate(card, left.row_width + right.row_width, cost, distincts)

    def _estimate_outer_join(self, op):
        left = self.estimate(op.left)
        right = self.estimate(op.right)
        matched = 0.0
        for branch in op.branches:
            branch_card = right.cardinality
            if branch.tag_column is not None:
                branch_card /= max(len(op.branches), 1)
            selectivity = self._join_selectivity(branch.equalities, left, right)
            matched += left.cardinality * branch_card * selectivity
        card = max(left.cardinality, matched)
        model = self.cost_model
        cost = left.server_ms + right.server_ms + model.scaled(
            right.cardinality * model.hash_row_ms
            + left.cardinality * len(op.branches) * model.probe_row_ms
            + card * model.join_out_row_ms
        )
        if algebra.outer_join_nesting(op.right) >= model.reevaluation_threshold:
            # Mirror the engine's derived-table re-evaluation penalty so
            # the greedy planner's oracle predicts (and avoids) the same
            # blowups the engine would produce.
            cost += (
                max(left.cardinality - 1.0, 0.0)
                * right.server_ms
                * model.reevaluation_factor
            )
        distincts = _cap_distincts({**left.distincts, **right.distincts}, card)
        return Estimate(card, left.row_width + right.row_width, cost, distincts)

    def _estimate_union(self, op):
        children = [self.estimate(c) for c in op.inputs]
        card = sum(c.cardinality for c in children)
        out_names = op.column_names()
        width = 0.0
        if card > 0:
            for child_op, child in zip(op.inputs, children):
                missing = len(out_names) - len(child_op.columns())
                width += child.cardinality * (child.row_width + missing)
            width /= card
        distincts = {}
        for child in children:
            for name, d in child.distincts.items():
                distincts[name] = distincts.get(name, 0.0) + d
        model = self.cost_model
        cost = sum(c.server_ms for c in children) + model.scaled(
            card * model.union_row_ms
        )
        return Estimate(card, width, cost, _cap_distincts(distincts, card))

    def _estimate_sort(self, op):
        child = self.estimate(op.child)
        model = self.cost_model
        n = max(child.cardinality, 1.0)
        comparisons = n * math.log2(n + 1)
        cost = comparisons * model.sort_cmp_ms * (
            1.0 + child.row_width / model.sort_width_norm
        )
        total_bytes = n * child.row_width
        if total_bytes > model.sort_memory_bytes:
            overflow = total_bytes / model.sort_memory_bytes - 1.0
            cost *= 1.0 + model.spill_factor * overflow
        return Estimate(
            cardinality=child.cardinality,
            row_width=child.row_width,
            server_ms=child.server_ms + model.scaled(cost),
            distincts=dict(child.distincts),
        )


def _cap_distincts(distincts, cardinality):
    cap = max(cardinality, 1.0)
    return {name: min(d, cap) for name, d in distincts.items()}


def _column_width_estimate(op, out_name, child_estimate, in_name):
    # Column widths ride along via the child estimate's average row width;
    # apportion it equally across columns as a simple, stable heuristic.
    n = max(len(op.child.columns()), 1)
    return child_estimate.row_width / n
