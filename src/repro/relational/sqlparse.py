"""A SQL parser for the dialect the generator emits.

SilkRoute is middle-ware, so the SQL *text* is the real interface to the
RDBMS.  This parser closes the loop: it parses the generated subset —
``SELECT [DISTINCT] ... FROM ... WHERE ...`` blocks, derived tables,
``LEFT OUTER JOIN ... ON`` with tagged disjunctions, ``UNION [ALL]`` with
NULL padding, and ``ORDER BY ... NULLS FIRST`` — back into the relational
algebra of :mod:`repro.relational.algebra`, so tests can verify that
``parse(render(plan))`` executes to exactly the same rows as ``plan``.

The parser reconstructs *a* plan, not the original operator tree: a flat
SELECT-FROM-WHERE becomes scans + joins (folding the FROM list left to
right on the available equality predicates) + residual filters + a
projection, which is semantically equivalent.
"""

import datetime
import re

from repro.common.errors import QueryError
from repro.relational.algebra import (
    And,
    ColumnRef,
    Comparison,
    Distinct,
    Filter,
    InnerJoin,
    JoinBranch,
    LeftOuterJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.relational.types import SqlType

_KEYWORDS = {
    "select", "distinct", "from", "where", "and", "or", "as", "left",
    "outer", "join", "on", "union", "all", "order", "by", "nulls", "first",
    "null", "true", "date", "with",
}

_NAME_PART = r'(?:[A-Za-z_][\w]*|"(?:[^"]|"")*")'

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>{part}(\.{part})*)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),])
    """.format(part=_NAME_PART),
    re.VERBOSE,
)

_NAME_PART_RE = re.compile(_NAME_PART)


def _unquote_name(value):
    """Strip identifier quoting from a (possibly dotted) name token:
    ``a1."order"`` becomes ``a1.order`` — the algebra works on bare names;
    quoting exists only in the SQL text."""
    if '"' not in value:
        return value
    parts = []
    for part in _NAME_PART_RE.findall(value):
        if part.startswith('"'):
            parts.append(part[1:-1].replace('""', '"'))
        else:
            parts.append(part)
    return ".".join(parts)


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
        kind = match.lastgroup
        value = match.group()
        if kind != "ws":
            if kind == "name" and '"' not in value \
                    and value.lower() in _KEYWORDS:
                tokens.append(("kw", value.lower()))
            elif kind == "name":
                tokens.append((kind, _unquote_name(value)))
            else:
                tokens.append((kind, value))
        pos = match.end()
    tokens.append(("eof", ""))
    return tokens


def parse_sql(text, schema):
    """Parse SQL text into an executable algebra plan."""
    parser = _SqlParser(_tokenize(text), schema)
    plan = parser.parse_statement()
    parser.expect_eof()
    return plan


class _SqlParser:
    def __init__(self, tokens, schema):
        self.tokens = tokens
        self.schema = schema
        self.index = 0
        self.ctes = {}

    # -- token helpers --------------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.index]

    def peek(self, offset=1):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self):
        token = self.current
        if token[0] != "eof":
            self.index += 1
        return token

    def accept(self, kind, value=None):
        token = self.current
        if token[0] == kind and (value is None or token[1] == value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            raise QueryError(
                f"expected {value or kind!r}, found {self.current[1]!r}"
            )
        return token

    def expect_eof(self):
        if self.current[0] != "eof":
            raise QueryError(f"trailing SQL: {self.current[1]!r}")

    # -- grammar ----------------------------------------------------------------

    def parse_statement(self):
        """``[WITH name AS (query), ...] query``."""
        if self.accept("kw", "with"):
            while True:
                name = self.expect("name")[1]
                self.expect("kw", "as")
                self.expect("punct", "(")
                self.ctes[name] = self.parse_query()
                self.expect("punct", ")")
                if not self.accept("punct", ","):
                    break
        return self.parse_query()

    def parse_query(self):
        plan = self._parse_union()
        if self.accept("kw", "order"):
            self.expect("kw", "by")
            keys = [self._parse_order_key()]
            while self.accept("punct", ","):
                keys.append(self._parse_order_key())
            plan = Sort(plan, keys)
        return plan

    def _parse_order_key(self):
        name = self.expect("name")[1]
        if self.accept("kw", "nulls"):
            self.expect("kw", "first")
        return name

    def _parse_union(self):
        branches = [self._parse_select()]
        distinct = False
        while self.accept("kw", "union"):
            if not self.accept("kw", "all"):
                distinct = True
            branches.append(self._parse_select())
        if len(branches) == 1:
            return branches[0]
        return OuterUnion(_harmonize_union(branches), distinct=distinct)

    def _parse_select(self):
        self.expect("kw", "select")
        distinct = bool(self.accept("kw", "distinct"))
        items = [self._parse_select_item()]
        while self.accept("punct", ","):
            items.append(self._parse_select_item())
        self.expect("kw", "from")
        sources = [self._parse_from_item()]
        join = None
        if self.accept("kw", "left"):
            self.expect("kw", "outer")
            self.expect("kw", "join")
            right = self._parse_from_item()
            self.expect("kw", "on")
            branches = self._parse_on_clause()
            join = (right, branches)
        else:
            while self.accept("punct", ","):
                sources.append(self._parse_from_item())
        predicates = []
        if self.accept("kw", "where"):
            predicates.append(self._parse_condition())
            while self.accept("kw", "and"):
                predicates.append(self._parse_condition())

        if join is not None:
            plan = self._build_outer_join(sources[0], join)
        else:
            plan = self._build_join_tree(sources, predicates)
            predicates = self._residual
        if predicates:
            plan = Filter(plan, And.of(predicates))
        plan = self._project(plan, items, distinct)
        return plan

    # -- FROM items --------------------------------------------------------------

    def _parse_from_item(self):
        if self.accept("punct", "("):
            inner = self.parse_query()
            self.expect("punct", ")")
            self.expect("kw", "as")
            alias = self.expect("name")[1]
            # Re-qualify the derived table's columns under its alias.
            items = [
                ProjectItem(ColumnRef(c.name), f"{alias}.{c.name}")
                for c in inner.columns()
            ]
            return Project(inner, items)
        table_name = self.expect("name")[1]
        self.accept("kw", "as")
        alias = self.expect("name")[1]
        if table_name in self.ctes:
            inner = self.ctes[table_name]
            items = [
                ProjectItem(ColumnRef(c.name), f"{alias}.{c.name}")
                for c in inner.columns()
            ]
            return Project(inner, items)
        return Scan(self.schema.table(table_name), alias)

    def _build_join_tree(self, sources, predicates):
        """Fold the FROM list, consuming equality predicates as join
        conditions where both sides are already available."""
        plan = sources[0]
        remaining = list(predicates)
        for source in sources[1:]:
            available = set(plan.column_names())
            incoming = set(source.column_names())
            eqs = []
            keep = []
            for predicate in remaining:
                pair = _as_column_equality(predicate)
                if pair:
                    left, right = pair
                    if left in available and right in incoming:
                        eqs.append((left, right))
                        continue
                    if right in available and left in incoming:
                        eqs.append((right, left))
                        continue
                keep.append(predicate)
            plan = InnerJoin(plan, source, eqs)
            remaining = keep
        self._residual = remaining
        return plan

    def _build_outer_join(self, left, join):
        right, raw_branches = join
        right_names = set(right.column_names())
        branches = []
        for conjuncts in raw_branches:
            equalities = []
            tag_column = None
            tag_value = None
            for item in conjuncts:
                kind, payload = item
                if kind == "tag":
                    tag_column, tag_value = payload
                    if tag_column is not None and tag_column not in right_names:
                        matches = [
                            name for name in right_names
                            if _strip_alias(name) == _strip_alias(tag_column)
                        ]
                        if len(matches) != 1:
                            raise QueryError(
                                f"cannot resolve tag column {tag_column!r}"
                            )
                        tag_column = matches[0]
                else:
                    a, b = payload
                    if a in right_names:
                        a, b = b, a
                    equalities.append((a, b))
            branches.append(
                JoinBranch(tuple(equalities), tag_column, tag_value)
            )
        return LeftOuterJoin(left, right, branches)

    def _parse_on_clause(self):
        disjuncts = [self._parse_on_disjunct()]
        while self.accept("kw", "or"):
            disjuncts.append(self._parse_on_disjunct())
        return disjuncts

    def _parse_on_disjunct(self):
        parenthesized = bool(self.accept("punct", "("))
        conjuncts = [self._parse_on_conjunct()]
        while self.accept("kw", "and"):
            conjuncts.append(self._parse_on_conjunct())
        if parenthesized:
            self.expect("punct", ")")
        return conjuncts

    def _parse_on_conjunct(self):
        if self.accept("kw", "true"):
            return ("tag", (None, None))
        left = self.expect("name")[1]
        self.expect("op", "=")
        token = self.current
        if token[0] == "name":
            self.advance()
            return ("eq", (left, token[1]))
        value = self._parse_literal()
        return ("tag", (left, value.value))

    # -- expressions ----------------------------------------------------------------

    def _parse_select_item(self):
        expr = self._parse_expr()
        name = None
        if self.accept("kw", "as"):
            name = self.expect("name")[1]
        elif isinstance(expr, ColumnRef):
            name = _strip_alias(expr.name)
        else:
            raise QueryError("literal select items need an AS alias")
        return ProjectItem(expr, name)

    def _parse_expr(self):
        token = self.current
        if token[0] == "name":
            self.advance()
            return ColumnRef(token[1])
        return self._parse_literal()

    def _parse_literal(self):
        token = self.current
        if self.accept("kw", "null"):
            return Literal(None, SqlType.VARCHAR)
        if token[0] == "number":
            self.advance()
            if "." in token[1]:
                return Literal(float(token[1]))
            return Literal(int(token[1]))
        if token[0] == "string":
            self.advance()
            return Literal(token[1][1:-1].replace("''", "'"))
        if self.accept("kw", "date"):
            raw = self.expect("string")[1][1:-1]
            return Literal(datetime.date.fromisoformat(raw))
        raise QueryError(f"expected literal, found {token[1]!r}")

    def _parse_condition(self):
        left = self._parse_expr()
        op_token = self.expect("op")
        op = "!=" if op_token[1] in ("<>", "!=") else op_token[1]
        right = self._parse_expr()
        return Comparison(op, left, right)

    def _project(self, plan, items, distinct):
        available = set(plan.column_names())
        resolved = []
        for item in items:
            expr = item.expr
            if isinstance(expr, ColumnRef) and expr.name not in available:
                # Output columns of a derived table may be referenced bare.
                candidates = [
                    name for name in available
                    if _strip_alias(name) == expr.name
                ]
                if len(candidates) == 1:
                    expr = ColumnRef(candidates[0])
                else:
                    raise QueryError(
                        f"cannot resolve column {expr.name!r}"
                    )
            resolved.append(ProjectItem(expr, item.name, item.sql_type))
        plan = Project(plan, resolved)
        if distinct:
            plan = Distinct(plan)
        return plan


def _as_column_equality(predicate):
    if (
        isinstance(predicate, Comparison)
        and predicate.op == "="
        and isinstance(predicate.left, ColumnRef)
        and isinstance(predicate.right, ColumnRef)
    ):
        return predicate.left.name, predicate.right.name
    return None


def _strip_alias(name):
    return name.split(".", 1)[1] if "." in name else name


def _harmonize_union(branches):
    """Give NULL padding columns the type their siblings use, so the union
    passes the algebra's type check."""
    types = {}
    for branch in branches:
        for col in branch.columns():
            if not _is_null_padding(branch, col.name):
                types.setdefault(col.name, col.sql_type)
    fixed = []
    for branch in branches:
        items = []
        changed = False
        for col in branch.columns():
            if _is_null_padding(branch, col.name) and col.name in types:
                items.append(
                    ProjectItem(Literal(None, types[col.name]), col.name)
                )
                changed = True
            else:
                items.append(ProjectItem(ColumnRef(col.name), col.name))
        fixed.append(Project(branch, items) if changed else branch)
    return fixed


def _is_null_padding(branch, name):
    op = branch
    while isinstance(op, Distinct):
        op = op.child
    if not isinstance(op, Project):
        return False
    for item in op.items:
        if item.name == name:
            return isinstance(item.expr, Literal) and item.expr.value is None
    return False
