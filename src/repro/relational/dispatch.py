"""Concurrent stream dispatch: run a plan's subqueries on a thread pool.

A partitioned plan is k independent SQL queries.  The middle-ware does not
have to submit them one after another: dispatching them concurrently makes
the plan's *elapsed* query time approach ``max`` of the per-stream server
times instead of their ``sum`` — the tuple-delivery phase the paper's
scaling argument (and the XML-reconstruction literature after it)
identifies as the dominant cost.

:func:`execute_specs` preserves the sequential path's observable behaviour
exactly:

* **ordering** — streams are returned in spec (document) order regardless
  of completion order;
* **timeouts** — the first spec (in spec order) whose subquery exceeds the
  budget "wins": its earlier siblings are reported as completed, later
  futures are cancelled where possible and drained otherwise, and the
  outcome is indistinguishable from the sequential run that would have
  stopped at the same spec;
* **caching** — the engine's :class:`~repro.relational.cache.PlanResultCache`
  is thread-safe and single-flighted, so concurrent hits replay charge logs
  bit-identically and concurrent misses on the same plan insert once.

Because the simulated engine is deterministic, per-stream ``server_ms`` /
``transfer_ms`` are identical in both modes; only wall-clock changes.

:func:`simulated_makespan` is the simulated-time counterpart: the elapsed
time of k durations on N workers under the pool's submission-order
scheduling, which reports expose as ``elapsed_query_ms``.
"""

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.common.errors import (
    OverloadError,
    StaleGenerationError,
    TimeoutExceeded,
    TransientConnectionError,
    tag_request,
)
from repro.obs import obs_parts
from repro.obs.metrics import NULL_METRICS
from repro.relational.faults import StreamAttemptStats


def simulated_makespan(durations_ms, workers):
    """Elapsed simulated time of ``durations_ms`` on ``workers`` workers.

    Jobs are assigned in submission order to the earliest-available worker
    (exactly what a thread pool does when job order is fixed), so with one
    worker this is the plain sum and with ``workers >= len(durations)`` it
    is the max."""
    durations_ms = list(durations_ms)
    if not durations_ms:
        return 0.0
    if workers is None or workers <= 1:
        return sum(durations_ms)
    free_at = [0.0] * min(workers, len(durations_ms))
    for duration in durations_ms:
        start = heapq.heappop(free_at)
        heapq.heappush(free_at, start + duration)
    return max(free_at)


@dataclass
class DispatchResult:
    """Outcome of one :func:`execute_specs` call.

    ``streams`` holds the completed
    :class:`~repro.relational.connection.TupleStream` results in spec
    order, ``stats`` the matching per-stream
    :class:`~repro.relational.faults.StreamAttemptStats`.  Exactly one of
    the failure slots may be set:

    * ``timeout`` — the first spec (in spec order) whose subquery exceeded
      the budget; ``streams``/``stats`` stop before it,
    * ``failure`` — the first spec (in spec order) that exhausted its
      retries with a
      :class:`~repro.common.errors.TransientConnectionError`;
      ``failure.stats`` carries the attempts it burned and
      ``failed_index`` its position, so a caller can degrade that spec
      and re-dispatch the remainder,
    * ``overload`` — the admission controller refused or shed part of the
      dispatch with an :class:`~repro.common.errors.OverloadError`;
      ``shed`` lists the labels of the streams that did not run
      (``streams``/``stats`` hold the ones completed before shedding).

    Unpacks as the historical ``streams, timeout = execute_specs(...)``
    pair.
    """

    streams: list
    timeout: object = None
    failure: object = None
    failed_index: int = None
    stats: list = field(default_factory=list)
    overload: object = None
    shed: tuple = ()

    def __iter__(self):
        return iter((self.streams, self.timeout))


def run_spec_with_retry(connection, spec, budget_ms=None, retry=None,
                        faults=None, breaker=None, obs=None, pool=None,
                        epoch=None, hedge_ms=None, engine=None,
                        batch_size=None, backend=None):
    """Execute one spec under the retry/backoff/breaker regime; return
    ``(stream, stats)``.

    With a ``pool`` (a :class:`~repro.relational.replicas.ReplicaPool`),
    execution is delegated to :meth:`ReplicaPool.run_spec
    <repro.relational.replicas.ReplicaPool.run_spec>` — same retry,
    deadline, and breaker semantics, plus replica routing, failover, and
    hedging (``hedge_ms``).  ``epoch`` pins the routing snapshot; when
    None, a single-spec epoch is opened and folded around the call.

    Otherwise, the loop around :meth:`Connection.execute
    <repro.relational.connection.Connection.execute>`:

    * **cache short-circuit** — a plan the engine would replay from its
      :class:`~repro.relational.cache.PlanResultCache` never contacts the
      (possibly faulty) source: no fault draw, no attempt recorded
      (``stats.from_cache``), which is why a warm cache makes a flaky
      source harmless.
    * **retry with simulated backoff** — each
      :class:`~repro.common.errors.TransientConnectionError` charges its
      wasted connection latency and the next backoff to the *simulated*
      clock (``stats.fault_latency_ms`` / ``stats.backoff_ms``); the
      stream is exhausted after ``retry.max_attempts`` submissions or when
      the next backoff would cross the deadline (``retry.deadline_ms``,
      defaulting to the plan's ``budget_ms``).
    * **circuit breaking** — ``breaker`` counts exhausted plans by
      fingerprint and fails repeat offenders fast.

    :class:`~repro.common.errors.TimeoutExceeded` is deterministic in
    simulated time and is never retried.  On exhaustion the raised
    ``TransientConnectionError`` carries ``stats`` (as ``exc.stats``) and
    the total ``attempts``.
    """
    if pool is not None:
        own_epoch = epoch is None
        if own_epoch:
            epoch = pool.begin_epoch()
        try:
            return pool.run_spec(
                spec, epoch, budget_ms=budget_ms, retry=retry,
                breaker=breaker, faults=faults, obs=obs, hedge_ms=hedge_ms,
                engine=engine, batch_size=batch_size, backend=backend,
            )
        finally:
            if own_epoch:
                pool.finish_epoch(epoch)
    tracer, _ = obs_parts(obs)
    policy = faults if faults is not None else getattr(connection, "faults", None)
    stats = StreamAttemptStats(label=spec.label)
    fingerprint = spec.plan.fingerprint() if breaker is not None else None
    if breaker is not None and not breaker.allow(fingerprint):
        exc = TransientConnectionError(
            stream_label=spec.label, attempt=0, attempts=0,
            reason="circuit breaker open",
        )
        exc.stats = stats
        raise exc
    if policy and connection.is_cached(spec.plan):
        stats.from_cache = True
        with tracer.span("cache", label=spec.label, replay=True):
            stream = connection.execute(
                spec.plan, compact_rows=spec.compact, budget_ms=budget_ms,
                sql=spec.sql, label=spec.label, faults=False, obs=obs,
                engine=engine, batch_size=batch_size, backend=backend,
            )
        return stream, stats
    max_attempts = retry.max_attempts if retry is not None else 1
    deadline = budget_ms
    if retry is not None and retry.deadline_ms is not None:
        deadline = retry.deadline_ms
    seed = policy.seed if policy else 0
    spent_ms = 0.0
    while True:
        stats.attempts += 1
        try:
            stream = connection.execute(
                spec.plan, compact_rows=spec.compact, budget_ms=budget_ms,
                sql=spec.sql, label=spec.label, attempt=stats.attempts,
                faults=policy if policy is not None else False, obs=obs,
                engine=engine, batch_size=batch_size, backend=backend,
            )
            stats.fault_latency_ms += stream.fault_latency_ms
            if breaker is not None:
                breaker.record_success(fingerprint)
            return stream, stats
        except TransientConnectionError as exc:
            stats.faults += 1
            stats.fault_latency_ms += exc.latency_ms
            spent_ms += exc.latency_ms
            tracer.event(
                "fault", label=spec.label, attempt=stats.attempts,
                latency_ms=round(exc.latency_ms, 3),
            )
            exhausted = stats.attempts >= max_attempts
            backoff = 0.0
            if not exhausted:
                backoff = retry.backoff_for(
                    spec.label, stats.faults, seed=seed
                )
                if deadline is not None and spent_ms + backoff > deadline:
                    exhausted = True
            if exhausted:
                if breaker is not None:
                    breaker.record_failure(fingerprint)
                exc.attempts = stats.attempts
                exc.stats = stats
                raise
            spent_ms += backoff
            stats.backoff_ms += backoff
            stats.retries += 1
            with tracer.span(
                "retry", label=spec.label, failure=stats.faults,
            ) as retry_span:
                retry_span.set_sim(backoff)


def execute_specs(connection, specs, budget_ms=None, workers=None,
                  retry=None, faults=None, breaker=None, obs=None,
                  pool=None, hedge_ms=None, admission=None, epoch=None,
                  admission_elapsed_ms=0.0, engine=None, batch_size=None,
                  backend=None, expect_generations=None, request=None):
    """Execute every :class:`~repro.core.sqlgen.StreamSpec`'s plan; return
    a :class:`DispatchResult` (unpacks as the ``(streams, timeout)``
    pair).

    ``streams`` is the list of :class:`~repro.relational.connection.TupleStream`
    results in spec order.  On a per-subquery budget overrun, ``streams``
    holds only the streams *preceding* the first timed-out spec (spec
    order — identical to where a sequential run stops) and ``timeout`` is
    the raised :class:`~repro.common.errors.TimeoutExceeded`, annotated
    with ``stream_label``.  ``workers`` > 1 dispatches the subqueries on a
    thread pool; results, timings, and timeout behaviour are identical to
    the sequential path.

    ``retry`` (a :class:`~repro.relational.faults.RetryPolicy`) makes each
    stream resilient to
    :class:`~repro.common.errors.TransientConnectionError` injected by the
    connection's :class:`~repro.relational.faults.FaultPolicy` (or the
    ``faults`` override): failed submissions are retried with simulated
    backoff (see :func:`run_spec_with_retry`).  A stream that exhausts its
    retries is reported via ``result.failure``/``failed_index`` — first
    failing spec in spec order wins, exactly like timeouts — so the caller
    can degrade the plan.  Fault draws are keyed by ``(label, plan,
    attempt)``: sequential and concurrent dispatch of the same specs see
    identical faults, retries, and results.

    A :class:`~repro.relational.replicas.ReplicaPool` (``pool``) routes
    each spec to the best healthy replica, failing over and hedging
    (``hedge_ms``) per :meth:`ReplicaPool.run_spec
    <repro.relational.replicas.ReplicaPool.run_spec>`.  Routing is frozen
    for the duration of the call: unless the caller pins an ``epoch``
    (e.g. one per sweep), a fresh one is opened here and its health
    observations folded back when the call returns — so sequential and
    concurrent dispatch route identically.

    An :class:`~repro.relational.replicas.AdmissionController`
    (``admission``) protects the dispatch: a plan whose stream count
    overflows the slots + queue capacity is refused up front, and with a
    ``deadline_ms`` each stream's deterministic scheduled start (the same
    heap schedule as :func:`simulated_makespan`, offset by
    ``admission_elapsed_ms`` already spent by earlier rounds) is checked
    against the deadline — streams that would start too late are shed.
    Either way ``result.overload`` carries the
    :class:`~repro.common.errors.OverloadError` and ``result.shed`` the
    unexecuted labels; completed earlier streams are kept.  The caller is
    responsible for clamping ``workers`` to the admission policy.

    With an observability session (``obs``), each stream is wrapped in a
    ``stream:<label>`` span; the submitting thread's current span is
    captured *before* the fan-out and passed as the explicit span parent,
    so worker-thread spans still hang under the ``dispatch`` span that
    scheduled them.  Stream metrics are recorded once per completed stream
    (and once for a terminally-failed stream's burned attempts), from the
    same :class:`~repro.relational.faults.StreamAttemptStats` the plan
    report sums.

    ``expect_generations`` — a per-table generation map pinned by the
    caller (see :meth:`~repro.relational.database.Database.table_generations`)
    — guards multi-plan executions against concurrent mutations: when the
    live generations no longer match, the dispatch refuses with a
    :class:`~repro.common.errors.StaleGenerationError` naming the mutated
    tables instead of silently recomputing against mixed states.

    ``request`` — an optional
    :class:`~repro.core.options.RequestContext` — stamps its
    tenant/request id onto every error raised here (timeouts, transient
    failures, overloads, stale generations), including those raised
    inside worker threads, so the serving layer can attribute failures
    without inspecting thread state.
    """

    def tag(exc):
        if request is not None:
            tag_request(
                exc,
                getattr(request, "tenant", None),
                getattr(request, "request_id", None),
            )
        return exc

    if expect_generations is not None:
        current = connection.database.table_generations()
        if current != expect_generations:
            changed = sorted(
                name
                for name in current.keys() | expect_generations.keys()
                if current.get(name) != expect_generations.get(name)
            )
            raise tag(StaleGenerationError(
                changed, pinned=expect_generations, current=current
            ))
    tracer, metrics = obs_parts(obs)
    parent = tracer.current()

    def run(spec):
        with tracer.span("stream:" + spec.label, parent=parent) as span:
            stream, stats = run_spec_with_retry(
                connection, spec, budget_ms=budget_ms, retry=retry,
                faults=faults, breaker=breaker, obs=obs,
                pool=pool, epoch=epoch, hedge_ms=hedge_ms,
                engine=engine, batch_size=batch_size, backend=backend,
            )
            span.set(
                rows=len(stream), attempts=stats.attempts,
                retries=stats.retries, from_cache=stats.from_cache,
            )
            if stats.replica is not None:
                span.set(replica=stats.replica, hedges=stats.hedges)
            span.set_sim(_stream_cost(stream, stats))
            return stream, stats

    def record(stream, stats):
        stats.record(metrics)
        metrics.inc("streams.executed")
        metrics.inc("tuples.transferred", len(stream))
        metrics.observe("stream.query_ms", stream.server_ms)
        metrics.observe("stream.transfer_ms", stream.transfer_ms)
        if getattr(stream, "backend_wall_ms", 0.0):
            metrics.observe("stream.backend_wall_ms", stream.backend_wall_ms)

    result = DispatchResult(streams=[])
    if admission is not None:
        overload = admission.admit_queue(specs)
        if overload is not None:
            result.overload = tag(overload)
            result.shed = overload.shed
            metrics.inc("dispatch.shed", len(overload.shed))
            tracer.event(
                "shed", reason="queue", streams=len(overload.shed),
            )
            return result
    deadline = admission.policy.deadline_ms if admission is not None else None
    free_at = None
    if deadline is not None and specs:
        free_at = [0.0] * min(max(workers or 1, 1), len(specs))

    def shed_deadline(index, start_ms):
        labels = tuple(spec.label for spec in specs[index:])
        overload = OverloadError(
            f"stream {specs[index].label} would start at simulated "
            f"{start_ms:.0f}ms, past the {deadline:.0f}ms admission "
            f"deadline",
            reason="deadline", shed=labels, stream_label=labels[0],
        )
        admission.note_shed(len(labels))
        result.overload = tag(overload)
        result.shed = labels
        metrics.inc("dispatch.shed", len(labels))
        tracer.event(
            "shed", reason="deadline", streams=len(labels), first=labels[0],
        )

    own_epoch = False
    if pool is not None and epoch is None:
        epoch = pool.begin_epoch()
        own_epoch = True
    try:
        if workers is not None and workers > 1 and len(specs) > 1:
            # Render SQL text up front: StreamSpec renders lazily and the
            # specs are shared across threads.
            for spec in specs:
                spec.sql
            with ThreadPoolExecutor(max_workers=workers) as executor:
                futures = [executor.submit(run, spec) for spec in specs]
                for i, future in enumerate(futures):
                    if free_at is not None:
                        start_ms = heapq.heappop(free_at)
                        if admission_elapsed_ms + start_ms >= deadline:
                            # Shed this and every later stream; work the
                            # threads already started is discarded (the
                            # simulated outcome matches the sequential
                            # path, which never starts them).
                            for later in futures[i:]:
                                later.cancel()
                            shed_deadline(i, admission_elapsed_ms + start_ms)
                            return result
                    try:
                        stream, stats = future.result()
                    except (TimeoutExceeded, TransientConnectionError) as exc:
                        # First terminally-failed spec in spec order wins;
                        # later futures are cancelled if not yet running
                        # and drained by the executor's shutdown otherwise.
                        for later in futures[i + 1:]:
                            later.cancel()
                        _record_failure(result, tag(exc), specs[i], i, metrics)
                        return result
                    if free_at is not None:
                        heapq.heappush(
                            free_at, start_ms + _stream_cost(stream, stats)
                        )
                    result.streams.append(stream)
                    result.stats.append(stats)
                    record(stream, stats)
            return result
        for i, spec in enumerate(specs):
            if free_at is not None:
                start_ms = heapq.heappop(free_at)
                if admission_elapsed_ms + start_ms >= deadline:
                    shed_deadline(i, admission_elapsed_ms + start_ms)
                    return result
            try:
                stream, stats = run(spec)
            except (TimeoutExceeded, TransientConnectionError) as exc:
                _record_failure(result, tag(exc), spec, i, metrics)
                return result
            if free_at is not None:
                heapq.heappush(
                    free_at, start_ms + _stream_cost(stream, stats)
                )
            result.streams.append(stream)
            result.stats.append(stats)
            record(stream, stats)
        return result
    finally:
        if own_epoch:
            pool.finish_epoch(epoch)


def _stream_cost(stream, stats):
    """One stream's simulated elapsed cost: fault-free execution plus the
    resilience overhead charged to the elapsed clock (backoff, wasted
    fault latency, hedge wait) — the duration the makespan schedules."""
    return (
        stream.server_ms + stream.transfer_ms + stats.backoff_ms
        + stats.fault_latency_ms + stats.hedge_wait_ms
    )


def _record_failure(result, exc, spec, index, metrics=NULL_METRICS):
    if exc.stream_label is None:
        exc.stream_label = spec.label
    if isinstance(exc, TimeoutExceeded):
        result.timeout = exc
    else:
        result.failure = exc
    result.failed_index = index
    # The attempts a terminally-failed stream burned enter the metrics here
    # — once — mirroring the report's ``spent_stats`` accounting.  A
    # timeout carries no stats (its interrupted attempt is not counted by
    # the report either).
    stats = getattr(exc, "stats", None)
    if stats is not None:
        stats.record(metrics)
