"""Concurrent stream dispatch: run a plan's subqueries on a thread pool.

A partitioned plan is k independent SQL queries.  The middle-ware does not
have to submit them one after another: dispatching them concurrently makes
the plan's *elapsed* query time approach ``max`` of the per-stream server
times instead of their ``sum`` — the tuple-delivery phase the paper's
scaling argument (and the XML-reconstruction literature after it)
identifies as the dominant cost.

:func:`execute_specs` preserves the sequential path's observable behaviour
exactly:

* **ordering** — streams are returned in spec (document) order regardless
  of completion order;
* **timeouts** — the first spec (in spec order) whose subquery exceeds the
  budget "wins": its earlier siblings are reported as completed, later
  futures are cancelled where possible and drained otherwise, and the
  outcome is indistinguishable from the sequential run that would have
  stopped at the same spec;
* **caching** — the engine's :class:`~repro.relational.cache.PlanResultCache`
  is thread-safe and single-flighted, so concurrent hits replay charge logs
  bit-identically and concurrent misses on the same plan insert once.

Because the simulated engine is deterministic, per-stream ``server_ms`` /
``transfer_ms`` are identical in both modes; only wall-clock changes.

:func:`simulated_makespan` is the simulated-time counterpart: the elapsed
time of k durations on N workers under the pool's submission-order
scheduling, which reports expose as ``elapsed_query_ms``.
"""

import heapq
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import TimeoutExceeded


def simulated_makespan(durations_ms, workers):
    """Elapsed simulated time of ``durations_ms`` on ``workers`` workers.

    Jobs are assigned in submission order to the earliest-available worker
    (exactly what a thread pool does when job order is fixed), so with one
    worker this is the plain sum and with ``workers >= len(durations)`` it
    is the max."""
    durations_ms = list(durations_ms)
    if not durations_ms:
        return 0.0
    if workers is None or workers <= 1:
        return sum(durations_ms)
    free_at = [0.0] * min(workers, len(durations_ms))
    for duration in durations_ms:
        start = heapq.heappop(free_at)
        heapq.heappush(free_at, start + duration)
    return max(free_at)


def execute_specs(connection, specs, budget_ms=None, workers=None):
    """Execute every :class:`~repro.core.sqlgen.StreamSpec`'s plan; return
    ``(streams, timeout)``.

    ``streams`` is the list of :class:`~repro.relational.connection.TupleStream`
    results in spec order.  On a per-subquery budget overrun, ``streams``
    holds only the streams *preceding* the first timed-out spec (spec
    order — identical to where a sequential run stops) and ``timeout`` is
    the raised :class:`~repro.common.errors.TimeoutExceeded`, annotated
    with ``stream_label``.  ``workers`` > 1 dispatches the subqueries on a
    thread pool; results, timings, and timeout behaviour are identical to
    the sequential path.
    """
    def run(spec):
        return connection.execute(
            spec.plan,
            compact_rows=spec.compact,
            budget_ms=budget_ms,
            sql=spec.sql,
            label=spec.label,
        )

    streams = []
    if workers is not None and workers > 1 and len(specs) > 1:
        # Render SQL text up front: StreamSpec renders lazily and the specs
        # are shared across threads.
        for spec in specs:
            spec.sql
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run, spec) for spec in specs]
            for i, future in enumerate(futures):
                try:
                    streams.append(future.result())
                except TimeoutExceeded as exc:
                    # First timed-out spec in spec order wins; later
                    # futures are cancelled if not yet running and drained
                    # by the executor's shutdown otherwise.
                    for later in futures[i + 1:]:
                        later.cancel()
                    exc.stream_label = specs[i].label
                    return streams, exc
        return streams, None
    for spec in specs:
        try:
            streams.append(run(spec))
        except TimeoutExceeded as exc:
            exc.stream_label = spec.label
            return streams, exc
    return streams, None
