"""A real SQLite backend loaded from the simulated :class:`Database`.

The closest thing the repo has to the paper's commercial RDBMS: the whole
catalog — tables, primary keys, unique sets, and foreign keys from
:mod:`repro.relational.schema` — is emitted as SQLite DDL, rows are bulk
inserted, and every generated partition SQL is executed verbatim after the
small dialect adaptation in :func:`repro.relational.sqltext.to_sqlite`.

Value mapping is deliberately boring so the round trip is lossless:
INTEGER→INTEGER, DECIMAL→REAL, VARCHAR/CHAR→TEXT, and DATE→TEXT holding
the ISO-8601 string (which sorts chronologically, so ORDER BY agrees with
the simulated engine's date ordering).  Rows coming back are converted to
the plan's declared column types before cross-validation.

The backend tracks the database's per-table generations
(:meth:`~repro.relational.database.Database.table_generations`): a
mutation through the database API marks the table stale and it is
reloaded before the next execution, so the SQLite mirror follows the
incremental-maintenance workloads without a manual refresh step.

Loading runs with foreign-key enforcement off (SQLite would otherwise
demand topological insert order); a ``PRAGMA foreign_key_check`` after
every (re)load asserts the declared constraints actually hold — the
in-memory database enforces them on mutation, so a violation here means
the mirror diverged and is raised as a
:class:`~repro.common.errors.BackendMismatchError`.

Thread safety: the dispatch layer executes streams from worker threads,
so one connection is shared under a lock (``check_same_thread=False``).
Queries serialize on the backend — wall-clock measurements stay
per-statement honest — while the simulated timings, computed engine-side,
remain exactly as concurrent as before.
"""

import datetime
import sqlite3
import threading
from time import perf_counter

from repro.common.errors import BackendMismatchError
from repro.relational.backends.base import Backend
from repro.relational.sqltext import to_sqlite
from repro.relational.types import SqlType

_TYPE_MAP = {
    SqlType.INTEGER: "INTEGER",
    SqlType.DECIMAL: "REAL",
    SqlType.VARCHAR: "TEXT",
    SqlType.CHAR: "TEXT",
    SqlType.DATE: "TEXT",
}


def _q(name):
    """Always-quoted identifier for DDL (DDL is ours alone, so uniform
    quoting beats minimal quoting)."""
    return '"%s"' % name.replace('"', '""')


class SqliteBackend(Backend):
    """Execute generated SQL on a real SQLite database mirroring
    ``database``.

    ``db_path=None`` (the default) uses a private ``:memory:`` instance;
    a path makes the mirror an ordinary on-disk SQLite file (handy for
    poking at it with the ``sqlite3`` shell afterwards).  Construction is
    cheap — the connection is opened and loaded lazily on first use.
    """

    name = "sqlite"
    is_real = True

    def __init__(self, database, db_path=None):
        self.database = database
        self.db_path = db_path
        self._conn = None
        self._generations = {}
        self._lock = threading.Lock()

    # -- schema + data loading --------------------------------------------

    def _ddl(self, schema):
        lines = []
        for column in schema.columns:
            null = "" if column.nullable else " NOT NULL"
            lines.append(
                f"  {_q(column.name)} {_TYPE_MAP[column.sql_type]}{null}"
            )
        lines.append(
            "  PRIMARY KEY (" + ", ".join(_q(k) for k in schema.key) + ")"
        )
        for unique in schema.unique_sets:
            lines.append(
                "  UNIQUE (" + ", ".join(_q(c) for c in unique) + ")"
            )
        for fk in self.database.schema.foreign_keys_from(schema.name):
            lines.append(
                "  FOREIGN KEY ("
                + ", ".join(_q(c) for c in fk.columns)
                + f") REFERENCES {_q(fk.ref_table)} ("
                + ", ".join(_q(c) for c in fk.ref_columns)
                + ")"
            )
        return (
            f"CREATE TABLE IF NOT EXISTS {_q(schema.name)} (\n"
            + ",\n".join(lines)
            + "\n)"
        )

    def _ensure_fresh(self):
        """Open + load on first use; reload any table whose generation
        moved since.  Caller holds the lock."""
        if self._conn is None:
            self._conn = sqlite3.connect(
                self.db_path or ":memory:", check_same_thread=False,
            )
            for name in self.database.schema.table_names:
                self._conn.execute(self._ddl(self.database.schema.table(name)))
            self._generations = {}
        current = self.database.table_generations()
        stale = [
            name for name, generation in current.items()
            if self._generations.get(name) != generation
        ]
        if not stale:
            return
        for name in stale:
            self._reload_table(name)
        self._conn.commit()
        violations = self._conn.execute("PRAGMA foreign_key_check").fetchall()
        if violations:
            tables = sorted({row[0] for row in violations})
            raise BackendMismatchError(
                f"sqlite mirror violates declared foreign keys in "
                f"table(s) {', '.join(tables)}",
                backend=self.name, detail=f"{len(violations)} violation(s)",
            )
        self._generations = current

    def _reload_table(self, name):
        table = self.database.table(name)
        schema = table.schema
        self._conn.execute(f"DELETE FROM {_q(name)}")
        converters = [
            (lambda v: v.isoformat() if v is not None else None)
            if column.sql_type is SqlType.DATE else None
            for column in schema.columns
        ]
        placeholders = ", ".join("?" for _ in schema.columns)
        insert = f"INSERT INTO {_q(name)} VALUES ({placeholders})"
        if any(converters):
            rows = (
                tuple(
                    fn(value) if fn is not None else value
                    for fn, value in zip(converters, row)
                )
                for row in table.rows
            )
        else:
            rows = iter(table.rows)
        self._conn.executemany(insert, rows)

    # -- execution ---------------------------------------------------------

    def execute_sql(self, plan, sql):
        """Run the dialect-adapted ``sql``; return ``(rows, wall_ms)``
        with values converted back to the plan's column types.  The wall
        measurement covers statement execution and the fetch, not the
        (generation-diffed, usually no-op) freshness check."""
        text = to_sqlite(sql)
        with self._lock:
            self._ensure_fresh()
            started = perf_counter()
            raw = self._conn.execute(text).fetchall()
            wall_ms = (perf_counter() - started) * 1000.0
        types = [column.sql_type for column in plan.columns()]
        return [_convert_row(types, row) for row in raw], wall_ms

    def table_count(self, table_name):
        """Row count straight from SQLite — a cheap mirror sanity probe
        used by tests and the example."""
        with self._lock:
            self._ensure_fresh()
            cursor = self._conn.execute(
                f"SELECT COUNT(*) FROM {_q(table_name)}"
            )
            return cursor.fetchone()[0]

    def refresh(self):
        """Forget the recorded per-table generations so the next
        execution reloads **every** table from the in-memory database.

        The post-recovery hook: :func:`~repro.relational.wal.recover`
        calls this on each attached backend after restoring table
        contents, because a restore rewrites rows *and* pins generation
        counters — the generation diff alone can no longer be trusted to
        notice which mirrored tables changed underneath it."""
        with self._lock:
            self._generations = {}

    def close(self):
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
                self._generations = {}

    def __repr__(self):
        where = self.db_path or ":memory:"
        return f"SqliteBackend({where!r})"


def _convert_row(types, row):
    return tuple(
        _convert_value(sql_type, value)
        for sql_type, value in zip(types, row)
    )


def _convert_value(sql_type, value):
    if value is None:
        return None
    if sql_type is SqlType.DATE:
        return datetime.date.fromisoformat(value)
    if sql_type is SqlType.INTEGER:
        return int(value)
    if sql_type is SqlType.DECIMAL:
        return float(value)
    return value


__all__ = ["SqliteBackend"]
