"""Pluggable execution backends for the generated SQL.

See :mod:`repro.relational.backends.base` for the abstraction and the
determinism contract, and :mod:`repro.relational.backends.sqlite` for the
real SQLite member.
"""

from repro.relational.backends.base import (
    BACKEND_NAMES,
    Backend,
    SimulatedBackend,
    align_backend_rows,
    resolve_backend,
)
from repro.relational.backends.sqlite import SqliteBackend

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "SimulatedBackend",
    "SqliteBackend",
    "align_backend_rows",
    "resolve_backend",
]
