"""Backend abstraction: where generated SQL is actually executed.

The paper's middle-ware sends every partition's SQL to a commercial RDBMS
over JDBC.  This repo historically simulated that source end to end — the
:class:`~repro.relational.engine.QueryEngine` evaluates plans with an
analytical cost model, so timings are deterministic and experiments are
reproducible bit for bit.  A :class:`Backend` makes the *source* a
pluggable axis without giving that up:

* :class:`SimulatedBackend` — the in-memory engine alone.  The default;
  nothing changes.
* :class:`~repro.relational.backends.sqlite.SqliteBackend` — a real
  SQLite instance loaded from the same :class:`Database`.  The simulated
  engine still runs first and stays the *oracle*: its rows, simulated
  timings, budget semantics, and cache behavior are untouched.  The
  dialect-adapted SQL is additionally executed on SQLite, its wall-clock
  time measured, and its rows cross-validated against the oracle
  (:func:`align_backend_rows`) — a disagreement raises
  :class:`~repro.common.errors.BackendMismatchError` instead of silently
  preferring either side.

This is the determinism contract: ``backend="sqlite"`` never changes XML
output, ``server_ms``/``transfer_ms``, or plan-cache keys; it *adds* a
measured ``backend_wall_ms`` per stream (surfaced through
:class:`~repro.core.silkroute.StreamReport` / ``PlanReport`` and the
metrics registry), which is what the calibration layer
(:mod:`repro.relational.calibrate`) fits the cost model against.
"""

from repro.common.errors import BackendMismatchError, QueryError
from repro.common.ordering import sort_key
from repro.relational.algebra import Sort

#: The backend names :func:`resolve_backend` accepts as strings.
BACKEND_NAMES = ("simulated", "sqlite")


class Backend:
    """One place generated SQL can be executed.

    Hashes by identity (so an :class:`~repro.core.options.ExecutionOptions`
    carrying one stays hashable) and never compares equal to another
    instance.
    """

    #: Short stable name, also the CLI spelling (``--backend <name>``).
    name = "backend"
    #: True when executing contacts a real engine whose wall-clock time is
    #: measured; False for pure pass-throughs like :class:`SimulatedBackend`.
    is_real = False

    def execute_sql(self, plan, sql):
        """Execute ``sql`` (the generated dialect, pre-adaptation) for
        ``plan``; return ``(rows, wall_ms)`` where ``rows`` are plain
        tuples converted back to the plan's column types and ``wall_ms``
        is the measured wall-clock milliseconds."""
        raise NotImplementedError

    def close(self):
        """Release any real resources; idempotent."""

    def __repr__(self):
        return f"{type(self).__name__}()"


class SimulatedBackend(Backend):
    """The in-memory engine alone — an explicit spelling of the default.

    Exists so ``backend="simulated"`` round-trips through options, CLI
    flags, and mixed :class:`~repro.relational.replicas.ReplicaSet`
    members; :meth:`execute_sql` is never called on it.
    """

    name = "simulated"
    is_real = False


def resolve_backend(value, database=None):
    """Normalize a backend argument: None and :class:`Backend` instances
    pass through; the strings ``"simulated"``/``"sqlite"`` construct the
    corresponding backend over ``database``."""
    if value is None or isinstance(value, Backend):
        return value
    if value == "simulated":
        return SimulatedBackend()
    if value == "sqlite":
        if database is None:
            raise QueryError(
                "backend 'sqlite' needs a database to load; resolve it "
                "through a Connection (or pass a SqliteBackend instance)"
            )
        from repro.relational.backends.sqlite import SqliteBackend

        return SqliteBackend(database)
    raise QueryError(
        f"unknown backend {value!r} (expected one of {BACKEND_NAMES} "
        "or a Backend instance)"
    )


def align_backend_rows(plan, oracle_rows, backend_rows, backend_name,
                       label=None, sql=None):
    """Cross-validate a real backend's rows against the simulated oracle.

    The generated SQL's ORDER BY does not totally order the result (ties
    beyond the sort key may legally come back in any order from a real
    engine), so equality is checked in two parts: the two results must be
    the same *bag* of rows, and — when the plan's root is a
    :class:`~repro.relational.algebra.Sort` — the backend's order must be
    non-decreasing on the declared sort keys.  Returns the oracle rows
    (the canonical order every downstream byte-identity guarantee is
    stated against); raises
    :class:`~repro.common.errors.BackendMismatchError` on any difference.
    """
    if len(backend_rows) != len(oracle_rows):
        raise BackendMismatchError(
            f"{backend_name} returned {len(backend_rows)} rows, "
            f"simulated oracle {len(oracle_rows)}",
            backend=backend_name, stream_label=label, sql=sql,
            detail="row-count mismatch",
        )
    expected = sorted(oracle_rows, key=sort_key)
    received = sorted(backend_rows, key=sort_key)
    for index, (want, got) in enumerate(zip(expected, received)):
        if want != got:
            raise BackendMismatchError(
                f"{backend_name} rows disagree with the simulated oracle "
                f"(first difference at sorted row {index}: "
                f"expected {want!r}, got {got!r})",
                backend=backend_name, stream_label=label, sql=sql,
                detail=f"row {index}: {want!r} != {got!r}",
            )
    if isinstance(plan, Sort) and plan.keys:
        names = list(plan.column_names())
        positions = [names.index(k) for k in plan.keys]
        previous = None
        for index, row in enumerate(backend_rows):
            key = sort_key(tuple(row[p] for p in positions))
            if previous is not None and key < previous:
                raise BackendMismatchError(
                    f"{backend_name} violated the plan's ORDER BY at "
                    f"row {index}",
                    backend=backend_name, stream_label=label, sql=sql,
                    detail=f"row {index} sorts before its predecessor",
                )
            previous = key
    return oracle_rows
