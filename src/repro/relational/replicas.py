"""Replica-aware resilient dispatch: pools, hedging, failover, admission.

SilkRoute is middle-ware over an RDBMS it does not control (Sec. 1); a
production deployment would sit in front of *several* replicas of that
database.  This module models that serving layer deterministically, on
the same simulated clock as the rest of the system:

* :class:`ReplicaSet` — N :class:`~repro.relational.connection.Connection`
  objects over the *same* :class:`~repro.relational.database.Database`,
  each with its own :class:`~repro.relational.faults.FaultPolicy` /
  :class:`~repro.relational.connection.TransferModel`.  Replica 0 is the
  original connection; derived replicas draw faults from a seed extended
  with their id, so each replica fails independently but reproducibly.
* :class:`ReplicaPool` — routes each stream spec to the best healthy
  replica (EWMA latency, consecutive failures, a per-replica
  :class:`~repro.relational.faults.CircuitBreaker` with half-open
  probing), **fails over** to the next replica on
  :class:`~repro.common.errors.TransientConnectionError`, and issues a
  **hedged backup request** on a second replica when the first attempt's
  simulated completion exceeds ``hedge_ms`` — first simulated completion
  wins, the loser is cancelled and charges nothing (its window is
  subsumed by the winner's, so ``server_ms`` is never double-counted).
* :class:`AdmissionPolicy` / :class:`AdmissionController` — clamps the
  dispatch width to ``max_concurrent_streams``, bounds the stream queue,
  and enforces a per-query simulated deadline; excess work is shed with a
  typed :class:`~repro.common.errors.OverloadError` instead of queueing
  unboundedly.

Determinism contract (the property every byte-identity test rides on):
routing decisions are frozen per **epoch**.  :meth:`ReplicaPool.begin_epoch`
snapshots the health ranking; every health observation made while the
epoch is open is buffered and folded back in deterministically sorted
order by :meth:`ReplicaPool.finish_epoch`.  Within an epoch, the replica
chosen for a stream is a pure function of the snapshot and the stream's
own failure history — never of wall-clock completion order — so
sequential and concurrent dispatch route identically, draw identical
faults, and produce byte-identical XML with identical simulated timings.
Hedging preserves the invariant because the winner is chosen by comparing
*simulated* completions, and both candidate streams carry identical
``server_ms``/``transfer_ms`` (the engine is deterministic and replicas
share one result cache).
"""

import threading
from dataclasses import dataclass, replace

from repro.common.errors import (
    OverloadError,
    TransientConnectionError,
    tag_request,
)
from repro.obs import obs_parts
from repro.relational.backends.base import resolve_backend
from repro.relational.connection import Connection
from repro.relational.faults import CircuitBreaker, StreamAttemptStats


def replica_fault_policy(policy, index):
    """The fault policy replica ``index`` runs under, derived from a base
    policy: replica 0 keeps the policy unchanged (so a 1-replica pool is
    indistinguishable from the plain connection), replica *i* draws from
    the seed extended with ``|r<i>`` — independent outcomes per replica,
    reproducible across runs and dispatch orders."""
    if policy is None or index == 0:
        return policy
    return replace(policy, seed=f"{policy.seed}|r{index}")


class ReplicaSet:
    """N connections over the same simulated database.

    Build one explicitly from connections you configured yourself, or via
    :meth:`from_connection` to clone an existing connection's engine
    configuration N ways.  All replicas must share the *same*
    :class:`~repro.relational.database.Database` instance — they are
    replicas of one logical source, so any of them can serve any stream
    with byte-identical rows.
    """

    def __init__(self, connections):
        connections = list(connections)
        if not connections:
            raise ValueError("a ReplicaSet needs at least one connection")
        database = connections[0].database
        for i, conn in enumerate(connections):
            if conn.database is not database:
                raise ValueError(
                    f"replica {i} serves a different Database instance; "
                    "all replicas must share one logical source"
                )
        self.connections = connections

    @classmethod
    def from_connection(cls, connection, n, faults=None, transfer_models=None,
                        backends=None):
        """Clone ``connection`` into an ``n``-replica set.

        Replica 0 *is* the given connection (same engine, same cache);
        replicas 1..n-1 are fresh connections over the same database and
        cost model, sharing the result cache installed at build time.

        ``faults`` selects the per-replica fault policies: None derives
        them from the connection's installed policy via
        :func:`replica_fault_policy`; a single
        :class:`~repro.relational.faults.FaultPolicy` derives from that
        instead; a sequence of length ``n`` pins each replica explicitly
        (the lever for chaos scenarios — one hard-down replica, one slow
        one).  ``transfer_models`` optionally does the same for transfer
        coefficients; identical models keep hedged timings identical.
        ``backends`` pins each replica's default execution backend the
        same way — a sequence of length ``n`` of backend names or
        :class:`~repro.relational.backends.Backend` instances (None
        entries keep pure simulation), so a set can mix simulated and
        real-SQLite members.  Because a real backend never changes rows
        or simulated timings, a mixed set still routes, hedges, and
        fails over byte-identically to an all-simulated one.
        """
        if n < 1:
            raise ValueError(f"need at least 1 replica, got {n}")
        if transfer_models is not None and len(transfer_models) != n:
            raise ValueError(
                f"transfer_models has {len(transfer_models)} entries "
                f"for {n} replicas"
            )
        if backends is not None and len(backends) != n:
            raise ValueError(
                f"backends has {len(backends)} entries for {n} replicas"
            )
        per_replica = cls._fault_plan(connection, n, faults)
        connections = [connection]
        connection.faults = per_replica[0]
        if backends is not None:
            connection.backend = resolve_backend(
                backends[0], connection.database
            )
        for i in range(1, n):
            transfer = None
            if transfer_models is not None:
                transfer = transfer_models[i]
            conn = Connection(
                connection.database,
                connection.engine.cost_model,
                transfer_model=transfer or connection.transfer_model,
                faults=per_replica[i],
                backend=backends[i] if backends is not None else None,
            )
            if connection.cache is not None:
                conn.cache = connection.cache
            connections.append(conn)
        return cls(connections)

    @staticmethod
    def _fault_plan(connection, n, faults):
        if faults is None or hasattr(faults, "decide"):
            base = connection.faults if faults is None else faults
            return [replica_fault_policy(base, i) for i in range(n)]
        per_replica = list(faults)
        if len(per_replica) != n:
            raise ValueError(
                f"faults has {len(per_replica)} entries for {n} replicas"
            )
        return per_replica

    def __len__(self):
        return len(self.connections)

    def __iter__(self):
        return iter(self.connections)

    def __repr__(self):
        return f"ReplicaSet({len(self.connections)} replicas)"


@dataclass
class ReplicaHealth:
    """Rolling health of one replica, in simulated milliseconds.

    ``ewma_latency_ms`` smooths the simulated completion cost of
    successful attempts (fault latency + server + transfer);
    ``consecutive_failures`` resets on success.  Both are folded from
    epoch observations in deterministic order — see the module
    docstring's determinism contract.
    """

    replica: int
    ewma_latency_ms: float = None
    consecutive_failures: int = 0
    successes: int = 0
    failures: int = 0

    def record_success(self, cost_ms, alpha):
        self.successes += 1
        self.consecutive_failures = 0
        if self.ewma_latency_ms is None:
            self.ewma_latency_ms = cost_ms
        else:
            self.ewma_latency_ms += alpha * (cost_ms - self.ewma_latency_ms)

    def record_failure(self):
        self.failures += 1
        self.consecutive_failures += 1


class ReplicaEpoch:
    """A frozen routing snapshot plus the observations made under it.

    ``ranking`` orders replica ids best-first as of
    :meth:`ReplicaPool.begin_epoch`; :meth:`pick` is a pure function of
    it.  Observations buffer here (thread safe) until
    :meth:`ReplicaPool.finish_epoch` folds them into the live health
    state in sorted order.
    """

    def __init__(self, ranking):
        self.ranking = tuple(ranking)
        self._observations = []
        self._lock = threading.Lock()

    def pick(self, exclude=()):
        """The best-ranked replica id not in ``exclude`` (None if every
        replica is excluded)."""
        for replica in self.ranking:
            if replica not in exclude:
                return replica
        return None

    def observe(self, label, attempt, replica, ok, cost_ms):
        with self._lock:
            self._observations.append((label, attempt, replica, ok, cost_ms))

    def observations(self):
        """The buffered observations in deterministic order."""
        with self._lock:
            return sorted(self._observations)


class ReplicaPool:
    """Health-tracked routing, failover, and hedging over a replica set.

    ``replicas`` is a :class:`ReplicaSet` or an iterable of connections
    over one database.  ``hedge_ms`` is the default hedge trigger (a
    stream whose first attempt's simulated completion exceeds it gets a
    backup request on the next-ranked replica); ``unhealthy_after`` /
    ``cooldown`` configure the per-replica breaker (consecutive
    stream-level failures to open; epochs of denial before a half-open
    probe); ``ewma_alpha`` the latency smoothing.

    A pool accumulates health across epochs, so reusing one instance
    across materializations routes around a replica that went dark in an
    earlier call.  A *fresh* pool (what ``ExecutionOptions(replicas=N)``
    builds per call) starts with a clean slate — runs stay independent
    and reproducible.
    """

    def __init__(self, replicas, hedge_ms=None, unhealthy_after=3,
                 cooldown=2, ewma_alpha=0.25):
        if isinstance(replicas, ReplicaSet):
            connections = list(replicas.connections)
        else:
            connections = list(ReplicaSet(replicas).connections)
        self.connections = connections
        self.hedge_ms = hedge_ms
        self.ewma_alpha = ewma_alpha
        self.health = [ReplicaHealth(i) for i in range(len(connections))]
        self.breaker = CircuitBreaker(
            threshold=unhealthy_after, cooldown=cooldown
        )

    def __len__(self):
        return len(self.connections)

    def __repr__(self):
        return (
            f"ReplicaPool({len(self.connections)} replicas, "
            f"hedge_ms={self.hedge_ms})"
        )

    def policy_for(self, replica, override=None):
        """The fault policy replica ``replica`` runs under: the per-call
        ``override`` re-derived for that replica, else its connection's
        installed policy."""
        if override is not None:
            return replica_fault_policy(override, replica)
        return self.connections[replica].faults

    # -- epochs ------------------------------------------------------------------

    def begin_epoch(self):
        """Freeze the current health ranking into a :class:`ReplicaEpoch`.

        Replicas the breaker admits (closed, or open-and-due for a
        half-open probe) rank first, ordered by consecutive failures,
        then EWMA latency, then id; denied replicas rank last (still
        reachable as a stream's final wrap-around resort).  Also
        re-shares replica 0's result cache across the set, so a cache
        installed after the pool was built still serves every replica.
        """
        base_cache = self.connections[0].engine.cache
        for conn in self.connections[1:]:
            if conn.engine.cache is not base_cache:
                conn.cache = base_cache
        admitted, denied = [], []
        for replica in range(len(self.connections)):
            if self.breaker.allow(replica):
                admitted.append(replica)
            else:
                denied.append(replica)

        def health_key(replica):
            health = self.health[replica]
            ewma = health.ewma_latency_ms
            return (
                health.consecutive_failures,
                ewma if ewma is not None else 0.0,
                replica,
            )

        ranking = sorted(admitted, key=health_key)
        ranking += sorted(denied, key=health_key)
        return ReplicaEpoch(ranking)

    def finish_epoch(self, epoch):
        """Fold the epoch's buffered observations into the live health
        state and per-replica breaker, in deterministic sorted order —
        the reason concurrent dispatch leaves the same health trail as
        sequential."""
        for _label, _attempt, replica, ok, cost_ms in epoch.observations():
            if ok:
                self.health[replica].record_success(cost_ms, self.ewma_alpha)
                self.breaker.record_success(replica)
            else:
                self.health[replica].record_failure()
                self.breaker.record_failure(replica)

    # -- dispatch ----------------------------------------------------------------

    def run_spec(self, spec, epoch, budget_ms=None, retry=None, breaker=None,
                 faults=None, obs=None, hedge_ms=None, engine=None,
                 batch_size=None, backend=None):
        """Execute one stream spec with routing, failover, and hedging;
        return ``(stream, stats)``.

        The replica-aware twin of
        :func:`~repro.relational.dispatch.run_spec_with_retry` — same
        cache short-circuit, retry budget, deadline, and plan-fingerprint
        ``breaker`` semantics, with three additions:

        * **routing** — the first attempt goes to ``epoch``'s best-ranked
          replica;
        * **failover** — a
          :class:`~repro.common.errors.TransientConnectionError` moves
          the next attempt to the next-ranked replica *without* backoff
          (a different backend needs no cool-off); only when every
          replica has failed the stream once does the round wrap, with
          the retry policy's backoff charged and the tried set cleared.
          Failover consumes retry attempts — without a ``retry`` policy
          the first fault is terminal, exactly as on a single connection;
        * **hedging** — after a successful attempt whose simulated
          completion exceeds ``hedge_ms`` (argument, else the pool
          default), a backup executes on the next-ranked untried replica.
          The backup's simulated completion is ``hedge_ms`` later than
          the primary's start; whichever finishes first in simulated time
          wins (ties favour the primary).  A winning backup charges
          ``hedge_wait_ms`` plus its own fault latency; the loser charges
          nothing — its window is subsumed by the winner's.

        With a 1-replica pool every branch degenerates to the
        single-connection behaviour bit-identically.
        """
        tracer, _ = obs_parts(obs)
        if hedge_ms is None:
            hedge_ms = self.hedge_ms
        stats = StreamAttemptStats(label=spec.label)
        fingerprint = spec.plan.fingerprint() if breaker is not None else None
        if breaker is not None and not breaker.allow(fingerprint):
            exc = TransientConnectionError(
                stream_label=spec.label, attempt=0, attempts=0,
                reason="circuit breaker open",
            )
            exc.stats = stats
            raise exc
        policies = [
            self.policy_for(replica, faults)
            for replica in range(len(self.connections))
        ]
        primary = epoch.pick()
        stats.replica = primary
        conn = self.connections[primary]
        if any(policies) and conn.is_cached(spec.plan):
            stats.from_cache = True
            with tracer.span("cache", label=spec.label, replay=True):
                stream = conn.execute(
                    spec.plan, compact_rows=spec.compact, budget_ms=budget_ms,
                    sql=spec.sql, label=spec.label, faults=False, obs=obs,
                    engine=engine, batch_size=batch_size, backend=backend,
                )
            return stream, stats
        max_attempts = retry.max_attempts if retry is not None else 1
        deadline = budget_ms
        if retry is not None and retry.deadline_ms is not None:
            deadline = retry.deadline_ms
        seed = next((p.seed for p in policies if p), 0)
        spent_ms = 0.0
        tried = set()
        current = primary
        while True:
            stats.attempts += 1
            conn = self.connections[current]
            policy = policies[current]
            try:
                with tracer.span(
                    f"replica:{current}", label=spec.label,
                    attempt=stats.attempts,
                ):
                    stream = conn.execute(
                        spec.plan, compact_rows=spec.compact,
                        budget_ms=budget_ms, sql=spec.sql, label=spec.label,
                        attempt=stats.attempts,
                        faults=policy if policy is not None else False,
                        obs=obs, engine=engine, batch_size=batch_size,
                        backend=backend,
                    )
                break
            except TransientConnectionError as exc:
                stats.faults += 1
                stats.fault_latency_ms += exc.latency_ms
                spent_ms += exc.latency_ms
                tried.add(current)
                epoch.observe(
                    spec.label, stats.attempts, current, False, exc.latency_ms
                )
                tracer.event(
                    "fault", label=spec.label, attempt=stats.attempts,
                    latency_ms=round(exc.latency_ms, 3), replica=current,
                )
                if stats.attempts >= max_attempts:
                    self._exhaust(exc, stats, breaker, fingerprint)
                nxt = epoch.pick(exclude=tried)
                if nxt is None:
                    # Every replica failed this stream once this round:
                    # wrap to the best-ranked replica after a backoff.
                    tried.clear()
                    nxt = epoch.pick()
                    backoff = retry.backoff_for(
                        spec.label, stats.faults, seed=seed
                    )
                    if deadline is not None and spent_ms + backoff > deadline:
                        self._exhaust(exc, stats, breaker, fingerprint)
                    spent_ms += backoff
                    stats.backoff_ms += backoff
                    with tracer.span(
                        "retry", label=spec.label, failure=stats.faults,
                    ) as retry_span:
                        retry_span.set_sim(backoff)
                if nxt != current:
                    stats.failovers += 1
                    tracer.event(
                        "failover", label=spec.label, from_replica=current,
                        to_replica=nxt, attempt=stats.attempts,
                    )
                stats.retries += 1
                current = nxt
        primary_attempt = stats.attempts
        primary_cost = (
            stream.fault_latency_ms + stream.server_ms + stream.transfer_ms
        )
        epoch.observe(
            spec.label, primary_attempt, current, True, primary_cost
        )
        winning_latency = stream.fault_latency_ms
        winner = current
        if (hedge_ms is not None and len(self.connections) > 1
                and primary_cost > hedge_ms):
            backup = epoch.pick(exclude=tried | {current})
            if backup is not None:
                stream, winner, winning_latency = self._hedge(
                    spec, epoch, stats, tracer, obs, budget_ms, policies,
                    hedge_ms, current, stream, primary_cost,
                    backup, winning_latency, engine, batch_size, backend,
                )
        stats.fault_latency_ms += winning_latency
        stats.replica = winner
        if breaker is not None:
            breaker.record_success(fingerprint)
        return stream, stats

    def _hedge(self, spec, epoch, stats, tracer, obs, budget_ms, policies,
               hedge_ms, primary, primary_stream, primary_cost,
               backup, winning_latency, engine=None, batch_size=None,
               backend=None):
        """Issue the backup request; return the winning
        ``(stream, replica, fault_latency)`` by simulated completion."""
        stats.attempts += 1
        stats.hedges += 1
        policy = policies[backup]
        with tracer.span(
            "hedge", label=spec.label, primary=primary, backup=backup,
            after_ms=hedge_ms,
        ) as hedge_span:
            try:
                with tracer.span(
                    f"replica:{backup}", label=spec.label,
                    attempt=stats.attempts, hedged=True,
                ):
                    backup_stream = self.connections[backup].execute(
                        spec.plan, compact_rows=spec.compact,
                        budget_ms=budget_ms, sql=spec.sql, label=spec.label,
                        attempt=stats.attempts,
                        faults=policy if policy is not None else False,
                        obs=obs, engine=engine, batch_size=batch_size,
                        backend=backend,
                    )
            except TransientConnectionError as exc:
                # A failed backup is abandoned: the primary already
                # succeeded, so the fault costs nothing but the count.
                stats.faults += 1
                epoch.observe(
                    spec.label, stats.attempts, backup, False, exc.latency_ms
                )
                hedge_span.set(won=False, backup_failed=True)
                return primary_stream, primary, winning_latency
            backup_cost = (
                backup_stream.fault_latency_ms + backup_stream.server_ms
                + backup_stream.transfer_ms
            )
            epoch.observe(
                spec.label, stats.attempts, backup, True, backup_cost
            )
            if hedge_ms + backup_cost < primary_cost:
                stats.hedge_wins += 1
                stats.hedge_wait_ms += hedge_ms
                hedge_span.set(
                    won=True,
                    saved_ms=round(primary_cost - hedge_ms - backup_cost, 3),
                )
                return backup_stream, backup, backup_stream.fault_latency_ms
            hedge_span.set(won=False)
            return primary_stream, primary, winning_latency

    @staticmethod
    def _exhaust(exc, stats, breaker, fingerprint):
        if breaker is not None:
            breaker.record_failure(fingerprint)
        exc.attempts = stats.attempts
        exc.stats = stats
        raise exc


def resolve_pool(replicas, connection):
    """Normalize the ``replicas`` execution option to a
    :class:`ReplicaPool` (or None).

    ``None`` and ``1`` mean no pool (the plain single-connection path);
    an integer ``n >= 2`` builds a fresh pool of ``n`` replicas derived
    from ``connection`` (health state scoped to this call); a
    :class:`ReplicaSet` is wrapped; a :class:`ReplicaPool` instance is
    used as-is, health and all.
    """
    if replicas is None:
        return None
    if isinstance(replicas, ReplicaPool):
        return replicas
    if isinstance(replicas, ReplicaSet):
        return ReplicaPool(replicas)
    n = int(replicas)
    if n <= 1:
        return None
    return ReplicaPool(ReplicaSet.from_connection(connection, n))


@dataclass(frozen=True)
class AdmissionPolicy:
    """Capacity limits the admission controller enforces.

    ``max_concurrent_streams`` clamps the dispatch width (the thread-pool
    ``workers`` never exceeds it) and, together with
    ``max_queued_streams``, bounds how many streams one dispatch may
    submit: a plan needing more than slots + queue is refused up front.
    ``deadline_ms`` is a per-query simulated deadline — a stream whose
    deterministic scheduled *start* falls on or past it is shed (work
    already started is allowed to finish).

    ``max_inflight_requests`` is the serving layer's per-tenant quota: a
    cap on whole client *requests* (queries/mutations) one controller
    admits concurrently, enforced by
    :meth:`AdmissionController.acquire_request` before any stream is
    planned.  Unlike the stream-level limits it guards wall-clock
    concurrency (a tenant hammering the service), so it plays no part in
    the deterministic simulated schedule.

    All limits are optional; ``None`` disables that check.
    """

    max_concurrent_streams: int = None
    max_queued_streams: int = None
    deadline_ms: float = None
    max_inflight_requests: int = None


class AdmissionController:
    """Enforces an :class:`AdmissionPolicy`; counts admitted/shed streams.

    Shedding decisions are functions of deterministic quantities only —
    the spec count and the simulated schedule — never of wall-clock
    concurrency, so an overloaded run sheds the same streams under
    sequential and threaded dispatch.
    """

    def __init__(self, policy):
        self.policy = policy
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed = 0
        #: Whole requests currently inside :meth:`acquire_request` /
        #: :meth:`release_request` (the serving layer's per-tenant gauge).
        self.inflight = 0

    def clamp_workers(self, workers):
        """``workers`` bounded by ``max_concurrent_streams``."""
        limit = self.policy.max_concurrent_streams
        if limit is None:
            return workers
        return min(max(workers or 1, 1), limit)

    def admit_queue(self, specs):
        """Admit the whole dispatch or return the :class:`OverloadError`
        refusing it (streams beyond slots + queue would wait unboundedly)."""
        slots = self.policy.max_concurrent_streams
        queued = self.policy.max_queued_streams
        if slots is None or queued is None:
            with self._lock:
                self.admitted += len(specs)
            return None
        capacity = slots + queued
        if len(specs) > capacity:
            labels = tuple(spec.label for spec in specs)
            with self._lock:
                self.shed += len(specs)
            return OverloadError(
                f"{len(specs)} streams exceed admission capacity "
                f"{capacity} ({slots} concurrent + {queued} queued)",
                reason="queue", shed=labels, stream_label=labels[0],
            )
        with self._lock:
            self.admitted += len(specs)
        return None

    def note_shed(self, count):
        with self._lock:
            self.shed += count

    def acquire_request(self, tenant=None, request_id=None):
        """Admit one whole client request against the per-tenant quota, or
        shed it with an :class:`~repro.common.errors.OverloadError`
        (``reason="tenant"``) carrying the originating tenant/request id.
        The caller must pair every successful acquire with
        :meth:`release_request` (``try/finally``)."""
        limit = self.policy.max_inflight_requests
        with self._lock:
            if limit is not None and self.inflight >= limit:
                self.shed += 1
                raise tag_request(
                    OverloadError(
                        f"tenant quota exceeded: {self.inflight} request(s) "
                        f"already in flight (limit {limit})",
                        reason="tenant",
                    ),
                    tenant, request_id,
                )
            self.inflight += 1
            self.admitted += 1

    def release_request(self):
        """Release one :meth:`acquire_request` admission."""
        with self._lock:
            self.inflight = max(0, self.inflight - 1)


def resolve_admission(max_concurrent):
    """Normalize the ``max_concurrent`` execution option to an
    :class:`AdmissionController` (or None): an integer caps concurrent
    streams, an :class:`AdmissionPolicy` is wrapped, a controller is used
    as-is (sharing its admitted/shed counters across calls)."""
    if max_concurrent is None:
        return None
    if isinstance(max_concurrent, AdmissionController):
        return max_concurrent
    if isinstance(max_concurrent, AdmissionPolicy):
        return AdmissionController(max_concurrent)
    return AdmissionController(
        AdmissionPolicy(max_concurrent_streams=int(max_concurrent))
    )
