"""SQL value types.

Each type knows how to validate a Python value and reports a *width* in
bytes, which the cost model uses to charge sort, spill, and transfer costs.
Widths follow typical RDBMS storage sizes; VARCHAR widths are declared
maxima, while per-table statistics track observed average widths.
"""

import enum
import datetime


class SqlType(enum.Enum):
    """The SQL types used by the TPC-H fragment and the generated queries."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    CHAR = "char"
    DATE = "date"

    @property
    def storage_width(self):
        """Nominal storage width in bytes, used by the cost model."""
        return _STORAGE_WIDTHS[self]

    def accepts(self, value):
        """Return True if ``value`` is a legal non-NULL value of this type."""
        if self is SqlType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is SqlType.DECIMAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self in (SqlType.VARCHAR, SqlType.CHAR):
            return isinstance(value, str)
        if self is SqlType.DATE:
            return isinstance(value, datetime.date)
        raise AssertionError(f"unhandled type {self}")

    def value_width(self, value):
        """Width in bytes of one concrete value (NULL costs nothing here;
        the transfer model charges its own small null-marker cost)."""
        if value is None:
            return 0
        if self in (SqlType.VARCHAR, SqlType.CHAR):
            return len(value)
        return self.storage_width

    def to_sql_literal(self, value):
        """Render a Python value as a SQL literal in this type."""
        if value is None:
            return "NULL"
        if self is SqlType.INTEGER:
            return str(value)
        if self is SqlType.DECIMAL:
            return repr(float(value))
        if self in (SqlType.VARCHAR, SqlType.CHAR):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if self is SqlType.DATE:
            return f"DATE '{value.isoformat()}'"
        raise AssertionError(f"unhandled type {self}")


_WIDTH_FUNCTIONS = {}


def width_function(sql_type):
    """A memoized fast-path callable ``value -> width`` for one type.

    Equivalent to :meth:`SqlType.value_width` for non-NULL values but
    avoids the per-value enum dispatch: variable-width types return
    ``len`` itself, fixed-width types a constant function.  Hot loops
    (transfer costing, sort-width sampling) bind one callable per column
    instead of re-deciding the type per field.
    """
    fn = _WIDTH_FUNCTIONS.get(sql_type)
    if fn is None:
        if sql_type in (SqlType.VARCHAR, SqlType.CHAR):
            fn = len
        else:
            width = sql_type.storage_width
            fn = lambda value, _width=width: _width  # noqa: E731
        _WIDTH_FUNCTIONS[sql_type] = fn
    return fn


_STORAGE_WIDTHS = {
    SqlType.INTEGER: 4,
    SqlType.DECIMAL: 8,
    SqlType.VARCHAR: 24,
    SqlType.CHAR: 8,
    SqlType.DATE: 4,
}


#: Words that cannot appear as bare identifiers in the generated SQL —
#: the union of the keywords our own parser (:mod:`repro.relational.sqlparse`)
#: reserves and SQLite's reserved-keyword list, so quoted output is accepted
#: verbatim by both consumers.
SQL_RESERVED_WORDS = frozenset("""
    abort action add after all alter always analyze and as asc attach
    autoincrement before begin between by cascade case cast check collate
    column commit conflict constraint create cross current current_date
    current_time current_timestamp database date default deferrable deferred
    delete desc detach distinct do drop each else end escape except exclude
    exclusive exists explain fail filter first following for foreign from
    full generated glob group groups having if ignore immediate in index
    indexed initially inner insert instead intersect into is isnull join key
    last left like limit materialized natural no not nothing notnull null
    nulls of offset on or order others outer over partition plan pragma
    preceding primary query raise range recursive references regexp reindex
    release rename replace restrict returning right rollback row rows
    savepoint select set table temp temporary then ties to transaction
    trigger true unbounded union unique update using vacuum values view
    virtual when where window with without
""".split())


def quote_sql_ident(name):
    """Quote the dotted parts of identifier ``name`` that a SQL parser
    would not accept bare: reserved words and anything that is not a plain
    identifier are wrapped in double quotes (with ``\"\"`` doubling), while
    ordinary parts stay verbatim — so typical generated SQL is unchanged
    and reserved-word schema names round-trip through every consumer."""
    if "." not in name and _ident_is_plain(name):
        return name
    return ".".join(
        part if _ident_is_plain(part) else '"%s"' % part.replace('"', '""')
        for part in name.split(".")
    )


def quote_sql_alias(name):
    """Quote ``name`` as a *single* identifier.  An output-column alias
    is one name even when it contains dots (``r.regionkey`` as a column
    label), so unlike :func:`quote_sql_ident` nothing is split."""
    if _ident_is_plain(name):
        return name
    return '"%s"' % name.replace('"', '""')


def _ident_is_plain(part):
    return part.isidentifier() and part.lower() not in SQL_RESERVED_WORDS


def sql_literal(value):
    """Render a Python value as a SQL literal, inferring the type."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        raise TypeError("boolean literals are not part of the supported dialect")
    if isinstance(value, int):
        return SqlType.INTEGER.to_sql_literal(value)
    if isinstance(value, float):
        return SqlType.DECIMAL.to_sql_literal(value)
    if isinstance(value, str):
        return SqlType.VARCHAR.to_sql_literal(value)
    if isinstance(value, datetime.date):
        return SqlType.DATE.to_sql_literal(value)
    raise TypeError(f"cannot render {type(value).__name__} as a SQL literal")
