"""SQL value types.

Each type knows how to validate a Python value and reports a *width* in
bytes, which the cost model uses to charge sort, spill, and transfer costs.
Widths follow typical RDBMS storage sizes; VARCHAR widths are declared
maxima, while per-table statistics track observed average widths.
"""

import enum
import datetime


class SqlType(enum.Enum):
    """The SQL types used by the TPC-H fragment and the generated queries."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    CHAR = "char"
    DATE = "date"

    @property
    def storage_width(self):
        """Nominal storage width in bytes, used by the cost model."""
        return _STORAGE_WIDTHS[self]

    def accepts(self, value):
        """Return True if ``value`` is a legal non-NULL value of this type."""
        if self is SqlType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is SqlType.DECIMAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self in (SqlType.VARCHAR, SqlType.CHAR):
            return isinstance(value, str)
        if self is SqlType.DATE:
            return isinstance(value, datetime.date)
        raise AssertionError(f"unhandled type {self}")

    def value_width(self, value):
        """Width in bytes of one concrete value (NULL costs nothing here;
        the transfer model charges its own small null-marker cost)."""
        if value is None:
            return 0
        if self in (SqlType.VARCHAR, SqlType.CHAR):
            return len(value)
        return self.storage_width

    def to_sql_literal(self, value):
        """Render a Python value as a SQL literal in this type."""
        if value is None:
            return "NULL"
        if self is SqlType.INTEGER:
            return str(value)
        if self is SqlType.DECIMAL:
            return repr(float(value))
        if self in (SqlType.VARCHAR, SqlType.CHAR):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if self is SqlType.DATE:
            return f"DATE '{value.isoformat()}'"
        raise AssertionError(f"unhandled type {self}")


_WIDTH_FUNCTIONS = {}


def width_function(sql_type):
    """A memoized fast-path callable ``value -> width`` for one type.

    Equivalent to :meth:`SqlType.value_width` for non-NULL values but
    avoids the per-value enum dispatch: variable-width types return
    ``len`` itself, fixed-width types a constant function.  Hot loops
    (transfer costing, sort-width sampling) bind one callable per column
    instead of re-deciding the type per field.
    """
    fn = _WIDTH_FUNCTIONS.get(sql_type)
    if fn is None:
        if sql_type in (SqlType.VARCHAR, SqlType.CHAR):
            fn = len
        else:
            width = sql_type.storage_width
            fn = lambda value, _width=width: _width  # noqa: E731
        _WIDTH_FUNCTIONS[sql_type] = fn
    return fn


_STORAGE_WIDTHS = {
    SqlType.INTEGER: 4,
    SqlType.DECIMAL: 8,
    SqlType.VARCHAR: 24,
    SqlType.CHAR: 8,
    SqlType.DATE: 4,
}


def sql_literal(value):
    """Render a Python value as a SQL literal, inferring the type."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        raise TypeError("boolean literals are not part of the supported dialect")
    if isinstance(value, int):
        return SqlType.INTEGER.to_sql_literal(value)
    if isinstance(value, float):
        return SqlType.DECIMAL.to_sql_literal(value)
    if isinstance(value, str):
        return SqlType.VARCHAR.to_sql_literal(value)
    if isinstance(value, datetime.date):
        return SqlType.DATE.to_sql_literal(value)
    raise TypeError(f"cannot render {type(value).__name__} as a SQL literal")
