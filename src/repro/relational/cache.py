"""Cross-plan result cache: shared relational work across plan executions.

An exhaustive sweep (Figs. 13/14) executes every partition of the view-tree
edge set — 2^|E| plans whose SQL queries overwhelmingly repeat: the same
subtree query, i.e. the same root-to-node join path, recurs across almost
every partition.  For Query 1's 512-plan sweep the 2816 stream executions
collapse to 185 distinct plans, so memoizing whole-plan outcomes removes
~93% of the relational work without touching a single simulated
millisecond.

:class:`PlanResultCache` stores, per executed plan, the exact result rows
**and** the ordered log of simulated cost charges.  A hit *replays* the
charge log through a fresh accumulator, so the returned
:class:`~repro.relational.engine.ExecutionResult` is byte-identical to an
uncached execution — same ``server_ms``, same per-operator ``breakdown``
(same dict insertion order), same ``rows_examined``, and the same
:class:`~repro.common.errors.TimeoutExceeded` behaviour under any budget.
Executions that time out are cached too (as *incomplete* entries holding
the charge prefix up to the raise); an incomplete entry is served only when
replaying it is guaranteed to raise within the caller's budget, otherwise
the plan is re-executed (and the entry upgraded if it now completes).

Keys are ``(plan.fingerprint(), database.dependency_key(tables), cost_model,
include_startup)``:

* the structural fingerprint identifies the plan,
* the dependency key combines a unique per-instance token with the
  **per-table generation counters** of exactly the tables the plan reads
  (bumped on every mutation of that table), so a stale entry can never be
  served after a write — while entries for plans that do not read the
  mutated table stay valid and keep replaying,
* the (hashable, frozen) cost model guards against a cache shared by
  connections with different simulated servers,
* ``include_startup`` separates the two timing modes, whose charge values
  can differ at the ulp level (some charges are running-total deltas).

Entries are LRU-evicted against a configurable memory bound, estimated
from the cached rows' value widths.
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int
    misses: int
    stores: int
    evictions: int
    oversize_rejections: int
    entries: int
    current_bytes: float
    max_bytes: float
    #: Entries dropped because a mutation made their dependency key stale
    #: (as opposed to capacity ``evictions``).
    invalidations: int = 0

    @property
    def requests(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        if not self.requests:
            return 0.0
        return self.hits / self.requests

    def as_dict(self):
        """The snapshot as a plain (JSON-dumpable) dict, derived fields
        included — the shape the observability exporters publish."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "oversize_rejections": self.oversize_rejections,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
        }

    def __str__(self):
        return (
            f"{self.hits}/{self.requests} hits ({self.hit_rate:.1%}), "
            f"{self.entries} entries, {self.current_bytes / 1e6:.1f} MB "
            f"of {self.max_bytes / 1e6:.1f} MB, {self.evictions} evicted"
        )


class CacheEntry:
    """One cached execution outcome.

    ``charge_log`` is the ordered tuple of ``(label, scaled_ms, rows)``
    charges the engine accumulated *after* the per-query startup charge
    (startup is charged by the engine before the cache is consulted; the
    ``include_startup`` mode is part of the engine's key).  ``complete`` is
    False
    when the recorded run raised ``TimeoutExceeded``; then ``rows`` is
    ``None`` and the log ends at the raising charge.
    """

    __slots__ = ("rows", "charge_log", "complete", "nbytes")

    def __init__(self, rows, charge_log, complete, nbytes):
        self.rows = rows
        self.charge_log = charge_log
        self.complete = complete
        self.nbytes = nbytes

    def replay_raises(self, spent_ms, budget_ms):
        """Would replaying this log on top of ``spent_ms`` exceed the
        budget?  Performs the exact accumulation replay will perform, so
        the answer cannot disagree with the replay itself."""
        if budget_ms is None:
            return False
        total = spent_ms
        for _, ms, _ in self.charge_log:
            total += ms
            if total > budget_ms:
                return True
        return False


class _Flight:
    """One in-flight computation: completion flag plus the leader's
    published outcome (used by :meth:`SingleFlight.do`; the bare
    :meth:`SingleFlight.begin`/:meth:`SingleFlight.finish` protocol leaves
    ``value``/``error`` as None)."""

    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = False
        self.value = None
        self.error = None


class SingleFlight:
    """Collapse concurrent identical work into one execution.

    The generalization of the per-plan single-flight that
    :class:`PlanResultCache` has always run for concurrent cache misses:
    the first caller for a key becomes the *leader* and computes; callers
    arriving while the leader is in flight block and share the leader's
    outcome instead of redoing the work.  The serving layer
    (:mod:`repro.serve`) uses the same object to coalesce identical
    in-flight client queries — same plan fingerprint, same dependency
    generations, same options — into one execution whose byte-identical
    document every coalesced client receives.

    Two protocols, usable side by side on one instance:

    * :meth:`begin` / :meth:`finish` — the cache's historical guard.  The
      leader computes and publishes through its own side channel (the
      cache entry), then releases; followers re-consult that channel.
    * :meth:`do` — run a callable under the guard.  The leader's return
      value (or exception) is delivered to every follower that was in
      flight with it; the call reports whether this caller led.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._flights = {}

    def __len__(self):
        """Number of keys currently in flight."""
        with self._lock:
            return len(self._flights)

    def begin(self, key):
        """Return True when the caller becomes the leader for ``key`` (it
        must call :meth:`finish` when done).  When another caller is
        already leading the same key, block until it finishes and return
        False."""
        with self._cv:
            flight = self._flights.get(key)
            if flight is None:
                self._flights[key] = _Flight()
                return True
            while not flight.done:
                self._cv.wait()
            return False

    def finish(self, key, value=None, error=None):
        """Release the guard taken by :meth:`begin`, optionally publishing
        the leader's outcome to followers blocked in :meth:`do`."""
        with self._cv:
            flight = self._flights.pop(key, None)
            if flight is not None:
                flight.value = value
                flight.error = error
                flight.done = True
            self._cv.notify_all()

    def do(self, key, fn):
        """Run ``fn()`` single-flighted under ``key``; return
        ``(value, led)``.

        The leader executes ``fn`` and its result — value or raised
        exception — is shared with every follower that arrived while the
        execution was in flight (the exception object itself is re-raised
        in each follower).  ``led`` is True for the caller that actually
        executed."""
        with self._cv:
            flight = self._flights.get(key)
            if flight is not None:
                while not flight.done:
                    self._cv.wait()
                if flight.error is not None:
                    raise flight.error
                return flight.value, False
            self._flights[key] = _Flight()
        try:
            value = fn()
        except BaseException as exc:
            self.finish(key, error=exc)
            raise
        self.finish(key, value=value)
        return value, True


def resolve_cache(cache):
    """Normalize the one cache-wiring convention shared by every layer.

    ``SilkRoute(cache=...)``, ``Connection(cache=...)``, the
    ``Connection.cache`` property, and ``sweep_partitions(cache=...)`` all
    funnel through this: ``True`` builds a fresh :class:`PlanResultCache`,
    ``False``/``None`` disables caching, and an instance (possibly empty —
    ``len()`` is falsy) is used as-is, which is how one cache is shared
    across systems.  The cache itself always lives in exactly one place:
    the engine's :attr:`~repro.relational.engine.QueryEngine.cache`
    attribute.
    """
    if cache is True:
        return PlanResultCache()
    if cache is False or cache is None:
        return None
    return cache


class PlanResultCache:
    """Thread-safe LRU cache of plan execution outcomes.

    Install one on a :class:`~repro.relational.engine.QueryEngine` (or pass
    ``cache=`` to ``Connection`` / ``sweep_partitions`` / ``SilkRoute``) and
    every ``execute`` call consults it.  Rows are returned by reference;
    callers must treat result rows as immutable (the engine's own
    common-subexpression memo already shares them the same way).
    """

    #: Default memory bound: generous for the paper's workloads while still
    #: bounding a long-lived middle-ware process.
    DEFAULT_MAX_BYTES = 256 * 1024 * 1024

    def __init__(self, max_bytes=DEFAULT_MAX_BYTES):
        self.max_bytes = max_bytes
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._flight = SingleFlight()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._oversize = 0
        self._invalidations = 0
        self._current_bytes = 0.0

    def __len__(self):
        return len(self._entries)

    def peek(self, key):
        """Return the entry for ``key`` without touching counters or LRU
        order (or None).  Used by the resilient dispatcher to decide
        whether a plan can be replayed without contacting the (possibly
        faulty) source — a peek is not a request and must not skew
        :meth:`stats`."""
        with self._lock:
            return self._entries.get(key)

    def lookup(self, key, spent_ms=0.0, budget_ms=None):
        """Return a usable :class:`CacheEntry` or None.

        An incomplete (timed-out) entry is usable only when replaying it on
        top of ``spent_ms`` is guaranteed to raise within ``budget_ms`` —
        otherwise the caller must re-execute (it may now complete).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and not entry.complete:
                if not entry.replay_raises(spent_ms, budget_ms):
                    entry = None
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def begin(self, key):
        """Single-flight guard for concurrent misses on the same key.

        Returns True when the caller becomes the *leader* for ``key`` (it
        must execute the plan and call :meth:`finish` when done, whether or
        not it stored an entry).  When another thread is already computing
        the same key, blocks until that leader finishes and returns False —
        the caller should then re-:meth:`lookup` (the leader's entry is
        usually usable; if not, e.g. an incomplete entry under a larger
        budget, the next ``begin`` makes the caller the new leader).

        This is what makes concurrent stream dispatch insert each distinct
        plan *once*: N simultaneous misses produce one execution and N-1
        replays instead of N executions racing to store.  The guard itself
        is a :class:`SingleFlight`, the same mechanism the serving layer
        uses to coalesce whole client queries.
        """
        return self._flight.begin(key)

    def finish(self, key):
        """Release the single-flight guard taken by :meth:`begin`."""
        self._flight.finish(key)

    def store(self, key, entry):
        """Insert (or replace) one entry, evicting LRU entries as needed.
        Entries larger than the whole bound are rejected."""
        if entry.nbytes > self.max_bytes:
            with self._lock:
                self._oversize += 1
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= old.nbytes
            self._entries[key] = entry
            self._current_bytes += entry.nbytes
            self._stores += 1
            while self._current_bytes > self.max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._current_bytes -= evicted.nbytes
                self._evictions += 1

    def invalidate_tables(self, token, tables, current_generations):
        """Drop entries made stale by a mutation of ``tables``.

        With dependency-scoped keys a stale entry can never be *served*
        (its key no longer matches), so this is garbage collection plus
        accounting: it frees the bytes held by entries whose dependency
        key records, for one of the mutated tables, a generation different
        from ``current_generations[table]``, and counts them as
        ``invalidations``.  Entries keyed by anything other than the
        dependency-key shape for ``token`` — including caller-chosen
        opaque keys — are left alone.  Returns the number dropped.
        """
        tables = set(tables)
        dropped = 0
        with self._lock:
            for key in list(self._entries):
                if _stale_dependency_key(key, token, tables, current_generations):
                    entry = self._entries.pop(key)
                    self._current_bytes -= entry.nbytes
                    self._invalidations += 1
                    dropped += 1
        return dropped

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0.0

    def publish(self, metrics, prefix="plan_cache"):
        """Publish a :meth:`stats` snapshot as ``<prefix>.<field>`` gauges
        into an observability metrics registry (gauges, not counters: the
        cache keeps its own lifetime totals and a snapshot is
        last-write-wins)."""
        for name, value in self.stats().as_dict().items():
            metrics.gauge(f"{prefix}.{name}", value)

    def stats(self):
        """A :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                oversize_rejections=self._oversize,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_bytes=self.max_bytes,
                invalidations=self._invalidations,
            )

    def __repr__(self):
        return f"PlanResultCache({self.stats()})"


def _stale_dependency_key(key, token, tables, current_generations):
    """Does a plan-cache ``key`` record a stale generation for one of the
    mutated ``tables``?  Duck-typed: only keys shaped
    ``(fingerprint, (token, ((table, gen), ...)), cost_model, startup)``
    for this ``token`` qualify; anything else is not ours to judge."""
    if not (isinstance(key, tuple) and len(key) == 4):
        return False
    dep = key[1]
    if not (isinstance(dep, tuple) and len(dep) == 2 and dep[0] == token):
        return False
    pairs = dep[1]
    if not isinstance(pairs, tuple):
        return False
    for pair in pairs:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            return False
        name, generation = pair
        if name in tables and generation != current_generations.get(name):
            return True
    return False


class _NodeEntry:
    __slots__ = ("value", "tables", "nbytes", "hits")

    def __init__(self, value, tables, nbytes):
        self.value = value
        self.tables = tables
        self.nbytes = nbytes
        self.hits = 0


def _node_value_bytes(value):
    """Byte estimate for a node-cache value: a ``Batch`` or a
    ``(Batch, build_work)`` pair (the outer-join kernel's shape).  A cheap
    deterministic heuristic — 16 bytes per cell plus a fixed overhead —
    good enough to rank entries against the retention budget."""
    batch = value[0] if isinstance(value, tuple) else value
    length = getattr(batch, "length", 0)
    arity = getattr(batch, "arity", 1)
    return 64.0 + 16.0 * length * max(arity, 1)


class NodeResultCache:
    """Dependency-tracked cache of batch-engine sub-plan results.

    This is the "data half" cache of the columnar engine: each entry maps
    a sub-plan fingerprint to its materialized
    :class:`~repro.relational.batch.Batch` (charges always run live, so
    simulated timings never depend on hits).  Every entry remembers the
    base tables its sub-plan reads; :meth:`invalidate` drops exactly the
    entries that depend on mutated tables, which is what lets untouched
    view subtrees replay across writes instead of recomputing.

    Two bounds apply, both configurable through
    :class:`~repro.core.options.ExecutionOptions`:

    * ``max_entries`` — a pop-oldest capacity bound enforced on store
      (the former hard-coded ``_NODE_CACHE_CAP``), and
    * ``retention_bytes`` — a workload-driven byte budget enforced after
      each invalidation: surviving entries are scored
      ``(1 + hits) / nbytes`` (hottest-per-byte first) and only the best
      are retained across the mutation, per the reconstruction-view-
      selection idea.  ``None`` means no byte budget.

    Thread-safe; an engine shared by concurrent stream dispatch threads
    hits this cache from all of them.
    """

    DEFAULT_MAX_ENTRIES = 4096

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES, retention_bytes=None):
        self.max_entries = max_entries
        self.retention_bytes = retention_bytes
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`: when set,
        #: every hit/miss/store/eviction/invalidation also increments the
        #: matching ``node_cache.*`` counter at event time (so counters
        #: reconcile exactly with :meth:`stats`, even under concurrent
        #: dispatch).  The engine points this at the current execution's
        #: registry.
        self.metrics = None
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._invalidations = 0
        self._current_bytes = 0.0

    def __len__(self):
        return len(self._entries)

    def configure(self, max_entries=None, retention_bytes=None):
        """Adjust the bounds (``None`` leaves a bound unchanged; pass
        ``float("inf")`` to lift the retention budget).  Tightening
        ``max_entries`` evicts oldest-first immediately."""
        with self._lock:
            if max_entries is not None:
                self.max_entries = max_entries
                self._evict_over_capacity()
            if retention_bytes is not None:
                self.retention_bytes = retention_bytes

    def _inc(self, counter, amount=1):
        # Caller holds the lock; MetricsRegistry has its own.
        if self.metrics is not None and amount:
            self.metrics.inc(f"node_cache.{counter}", amount)

    def get(self, fingerprint):
        """The cached value for a sub-plan fingerprint, or None."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._misses += 1
                self._inc("misses")
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            entry.hits += 1
            self._inc("hits")
            return entry.value

    def store(self, fingerprint, value, tables):
        """Cache ``value`` for a sub-plan reading ``tables`` (an iterable
        of base-table names — the invalidation footprint)."""
        entry = _NodeEntry(value, frozenset(tables), _node_value_bytes(value))
        with self._lock:
            old = self._entries.pop(fingerprint, None)
            if old is not None:
                self._current_bytes -= old.nbytes
            self._entries[fingerprint] = entry
            self._current_bytes += entry.nbytes
            self._stores += 1
            self._inc("stores")
            self._evict_over_capacity()

    def _evict_over_capacity(self):
        # Caller holds the lock.
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._current_bytes -= evicted.nbytes
            self._evictions += 1
            self._inc("evictions")

    def invalidate(self, changed_tables):
        """Delta propagation: drop every entry whose sub-plan reads one of
        ``changed_tables``, then trim the survivors to the retention byte
        budget (hottest-per-byte retained first).  Returns the number of
        entries invalidated."""
        changed = frozenset(changed_tables)
        dropped = 0
        with self._lock:
            for fingerprint in list(self._entries):
                if self._entries[fingerprint].tables & changed:
                    entry = self._entries.pop(fingerprint)
                    self._current_bytes -= entry.nbytes
                    self._invalidations += 1
                    self._inc("invalidations")
                    dropped += 1
            if self.retention_bytes is not None:
                self._apply_retention()
        return dropped

    def _apply_retention(self):
        # Caller holds the lock.  Score survivors by hit-rate-per-byte and
        # keep the best within the budget; the rest are capacity evictions.
        if self._current_bytes <= self.retention_bytes:
            return
        ranked = sorted(
            self._entries.items(),
            key=lambda item: (1 + item[1].hits) / item[1].nbytes,
            reverse=True,
        )
        budget = 0.0
        for fingerprint, entry in ranked:
            budget += entry.nbytes
            if budget > self.retention_bytes:
                del self._entries[fingerprint]
                self._current_bytes -= entry.nbytes
                self._evictions += 1
                self._inc("evictions")
                budget -= entry.nbytes

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._current_bytes = 0.0

    def publish(self, metrics, prefix="node_cache"):
        """Publish a :meth:`stats` snapshot as ``<prefix>.<field>`` gauges
        (mirrors :meth:`PlanResultCache.publish`)."""
        for name, value in self.stats().as_dict().items():
            metrics.gauge(f"{prefix}.{name}", value)

    def stats(self):
        """A :class:`CacheStats` snapshot (``max_bytes`` reports the
        retention budget, infinite when unset)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                evictions=self._evictions,
                oversize_rejections=0,
                entries=len(self._entries),
                current_bytes=self._current_bytes,
                max_bytes=(
                    self.retention_bytes
                    if self.retention_bytes is not None
                    else float("inf")
                ),
                invalidations=self._invalidations,
            )

    def __repr__(self):
        return f"NodeResultCache({self.stats()})"
