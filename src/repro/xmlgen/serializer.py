"""Incremental XML serialization with escaping."""

import datetime
import io

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}


def escape_text(value):
    """Escape character data; non-string values use their natural form."""
    text = format_value(value)
    for char, entity in _ESCAPES.items():
        text = text.replace(char, entity) if char in text else text
    return text


def format_value(value):
    """Render a SQL value as XML character data."""
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


class XmlWriter:
    """Streaming XML writer.

    Writes to an internal buffer (or any file-like ``sink``), one event at a
    time, so the tagger never holds the document in memory.  ``indent`` of
    ``None`` produces compact output.
    """

    def __init__(self, sink=None, indent=None):
        self.sink = sink if sink is not None else io.StringIO()
        self.indent = indent
        self.depth = 0
        self._open_tag_has_children = []
        self._started = False

    def start_element(self, tag):
        self._newline()
        self._started = True
        self.sink.write(f"<{tag}>")
        if self._open_tag_has_children:
            self._open_tag_has_children[-1] = True
        self._open_tag_has_children.append(False)
        self.depth += 1

    def text(self, value):
        self.sink.write(escape_text(value))

    def end_element(self, tag):
        self.depth -= 1
        had_children = self._open_tag_has_children.pop()
        if had_children:
            self._newline(closing=True)
        self.sink.write(f"</{tag}>")

    def _newline(self, closing=False):
        if self.indent is None:
            return
        if not self._started and not closing:
            return
        self.sink.write("\n" + " " * self.indent * self.depth)

    def getvalue(self):
        if isinstance(self.sink, io.StringIO):
            return self.sink.getvalue()
        raise TypeError("writer is backed by an external sink")


class CountingSink:
    """A file-like sink that discards everything it is given, counting
    characters — lets benchmarks and dry runs drive the full streaming
    serialization path without accumulating the document anywhere."""

    def __init__(self):
        self.chars = 0

    def write(self, text):
        self.chars += len(text)
        return len(text)
