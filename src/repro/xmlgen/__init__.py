"""XML integration and tagging (Sec. 3.3).

Turns the sorted partitioned tuple streams back into the XML document: each
stream is decoded into *node instances*, the per-stream instance sequences
are k-way merged in global document order, and the constant-space tagger
nests and tags them.  The required memory depends only on the view-tree
size, never on the database size.

Also provides an incremental XML serializer and a small DTD parser/validator
used to check produced documents against Fig. 2-style DTDs.
"""

from repro.xmlgen.streams import (
    Instance,
    ComparatorLayout,
    StreamInstanceCache,
    XmlDocumentCache,
    decode_stream,
    iter_instances,
    merge_streams,
)
from repro.xmlgen.serializer import CountingSink, XmlWriter, escape_text
from repro.xmlgen.tagger import XmlTagger, tag_streams
from repro.xmlgen.dtd import Dtd, parse_dtd, validate_document

__all__ = [
    "Instance",
    "ComparatorLayout",
    "StreamInstanceCache",
    "XmlDocumentCache",
    "decode_stream",
    "iter_instances",
    "merge_streams",
    "CountingSink",
    "XmlWriter",
    "escape_text",
    "XmlTagger",
    "tag_streams",
    "Dtd",
    "parse_dtd",
    "validate_document",
]
