"""The constant-space tagging algorithm (Sec. 3.3).

The tagger consumes the merged instance stream, maintaining a stack of open
elements identified by (view-tree node, Skolem-term key values).  For each
incoming instance it closes elements down to the deepest still-matching
ancestor, then opens the instance's missing ancestors and the instance
itself, emitting the element's text content as it opens.

Memory is the stack (bounded by view-tree depth) plus the per-stream decode
memos (bounded by node count) — independent of database size, which is the
paper's scaling argument.  ``max_stack_depth`` and ``implicit_opens`` are
exposed so tests can verify both the bound and that every element was
opened from its own instance (an implicit open would indicate a plan whose
streams do not cover some node).
"""

from repro.core.viewtree import Stv
from repro.obs import obs_parts
from repro.xmlgen.serializer import XmlWriter
from repro.xmlgen.streams import CountingIterator, iter_instances


class XmlTagger:
    """Nests and tags a merged instance stream."""

    def __init__(self, tree, writer, root_tag=None):
        self.tree = tree
        self.writer = writer
        self.root_tag = root_tag
        self.max_stack_depth = 0
        self.implicit_opens = 0
        self.elements_written = 0

    def run(self, instances):
        """Consume the merged instance stream and emit the document.

        Stack frames carry two identities: the *key* identity (the key
        arguments — reconstructible from any descendant tuple, used to
        match ancestors) and the *full* Skolem-term identity (all
        arguments — available on the element's own instance, used to
        distinguish siblings that share key values, e.g. the simplified
        leaf terms of Sec. 3.1)."""
        if self.root_tag is not None:
            self.writer.start_element(self.root_tag)
        stack = []  # (node, key_identity, full_identity_or_None, tag)
        for instance in instances:
            chain = self._chain(instance)
            common = 0
            for entry, frame in zip(chain, stack):
                node, key_identity, full_identity = entry
                if frame[0] is not node or frame[1] != key_identity:
                    break
                if (
                    full_identity is not None
                    and frame[2] is not None
                    and frame[2] != full_identity
                ):
                    break
                common += 1
            if common == len(chain):
                continue  # duplicate instance; element already open
            while len(stack) > common:
                node, _, _, tag = stack.pop()
                self.writer.end_element(tag)
            for node, key_identity, full_identity in chain[common:]:
                if node is not instance.node:
                    self.implicit_opens += 1
                self._open(node, instance.values)
                stack.append((node, key_identity, full_identity, node.tag))
                self.max_stack_depth = max(self.max_stack_depth, len(stack))
        while stack:
            _, _, _, tag = stack.pop()
            self.writer.end_element(tag)
        if self.root_tag is not None:
            self.writer.end_element(self.root_tag)
        return self.writer

    def _chain(self, instance):
        """(node, key_identity, full_identity) for every ancestor-or-self
        of the instance.  Key identities come from the instance's values
        (ancestors' key arguments are always among a descendant's Skolem
        arguments); the full identity is only known for the instance's own
        node."""
        nodes = []
        node = instance.node
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        chain = []
        for node in nodes:
            key_identity = tuple(
                instance.values.get(stv.name) for stv in node.key_args
            )
            full_identity = instance.identity() if node is instance.node else None
            chain.append((node, key_identity, full_identity))
        return chain

    def _open(self, node, values):
        self.writer.start_element(node.tag)
        self.elements_written += 1
        for content in node.contents:
            if isinstance(content, Stv):
                value = values.get(content.name)
                if value is not None:
                    self.writer.text(value)
            else:
                self.writer.text(content)


def tag_streams(tree, specs, streams, root_tag="view", indent=None,
                writer=None, obs=None, instance_cache=None,
                instance_keys=None):
    """Decode, merge, and tag a set of executed streams.

    ``specs`` are the :class:`~repro.core.sqlgen.StreamSpec` objects and
    ``streams`` the matching executed row sources (any iterables of tuples —
    materialized ``TupleStream`` lists or lazy ``TupleCursor`` pipelines;
    with cursors and a sink-backed ``writer`` the whole
    decode→merge→tag→serialize path runs in constant memory).
    Returns ``(xml_text_or_writer, tagger)``.

    ``obs`` (an :class:`~repro.obs.ObsOptions` session) records the
    integration as a ``merge`` span containing a ``tag`` span — the two
    stages interleave (the tagger pulls the merge), so the merge span
    brackets both and carries the merged instance count — plus
    ``merge.instances`` / ``tag.elements`` / ``tag.bytes`` counters (bytes
    best-effort: the characters the writer's sink received, when the sink
    can tell).

    ``instance_cache``/``instance_keys`` (a
    :class:`~repro.xmlgen.streams.StreamInstanceCache` plus one key per
    spec, None to opt a stream out) replay unchanged streams' decoded
    instance sequences across materializations and splice them into the
    merge — see :func:`~repro.xmlgen.streams.iter_instances`.
    """
    writer = writer or XmlWriter(indent=indent)
    tagger = XmlTagger(tree, writer, root_tag=root_tag)
    instances = iter_instances(
        tree, specs, streams,
        instance_cache=instance_cache, instance_keys=instance_keys,
    )
    tracer, metrics = obs_parts(obs)
    if not (tracer.enabled or metrics.enabled):
        tagger.run(instances)
    else:
        counted = CountingIterator(instances)
        chars_before = _chars_written(writer)
        with tracer.span("merge", streams=len(specs)) as merge_span:
            with tracer.span("tag", root_tag=root_tag) as tag_span:
                tagger.run(counted)
            tag_span.set(
                elements=tagger.elements_written,
                max_stack_depth=tagger.max_stack_depth,
            )
            merge_span.set(instances=counted.count)
        metrics.inc("merge.instances", counted.count)
        metrics.inc("tag.elements", tagger.elements_written)
        chars_after = _chars_written(writer)
        if chars_before is not None and chars_after is not None:
            written = chars_after - chars_before
            metrics.inc("tag.bytes", written)
            tag_span.set(bytes=written)
    try:
        return writer.getvalue(), tagger
    except TypeError:
        return writer, tagger


def _chars_written(writer):
    """How many characters ``writer`` has emitted so far, or None when its
    sink cannot say (an opaque external stream)."""
    try:
        return len(writer.getvalue())
    except TypeError:
        pass
    sink = getattr(writer, "sink", None)
    chars = getattr(sink, "chars", None)
    if chars is not None:
        return chars
    tell = getattr(sink, "tell", None)
    if tell is not None:
        try:
            return tell()
        except (OSError, ValueError):
            return None
    return None
