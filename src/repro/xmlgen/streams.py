"""Decoding tuple streams into node instances and merging them.

A partitioned relation's tuple encodes a path from its subtree's root to a
terminal node instance (Sec. 3.2): the ``L`` columns spell the terminal
node's Skolem-function index, and the Skolem-term variable columns carry the
argument values of every node on the path.  :func:`decode_stream` expands
each tuple into one :class:`Instance` per path node (and, for reduced
units, per original member node), deduplicating consecutive repeats so the
per-stream instance sequence is nondecreasing in global document order.

The global order (:class:`ComparatorLayout`) interleaves ``L`` tags and
Skolem-term variables level by level — using only variables that are *key*
arguments of some node, because display values of an internal node are
absent from its descendants' tuples and must not influence relative order.
NULLs sort first, which places every parent instance before its children.
"""

import heapq
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.common.ordering import sort_key


@dataclass(frozen=True)
class Instance:
    """One occurrence of a view-tree node in the output document."""

    key: tuple     # global comparator key (NoneFirst-wrapped)
    node: object   # ViewTreeNode
    values: dict   # stv name -> value (the node's Skolem-term arguments)

    def identity(self):
        """The full Skolem-term identity (all arguments) — what fuses or
        distinguishes element instances."""
        return tuple(self.values.get(s.name) for s in self.node.args)

    def key_identity(self):
        """Identity restricted to the key arguments — the part of the term
        a descendant tuple can always reconstruct."""
        return tuple(self.values.get(s.name) for s in self.node.key_args)


class ComparatorLayout:
    """The interleaved global sort layout for a view tree."""

    def __init__(self, tree):
        self.tree = tree
        key_stvs = set()
        for node in tree.nodes:
            key_stvs.update(node.key_args)
        self.entries = []
        for level in range(1, tree.max_depth() + 1):
            self.entries.append(("L", level))
            for stv in tree.stvs_at_level(level):
                if stv in key_stvs:
                    self.entries.append(("stv", stv))

    def instance_key(self, node, values):
        raw = []
        for kind, what in self.entries:
            if kind == "L":
                level = what
                raw.append(node.index[level - 1] if level <= node.level else None)
            else:
                raw.append(values.get(what.name))
        return sort_key(raw)


def decode_stream(spec, rows, layout):
    """Yield the :class:`Instance` sequence of one stream, in order.

    ``spec`` is a :class:`repro.core.sqlgen.StreamSpec`; ``rows`` its
    executed, sorted tuples.  Memory is bounded by the view-tree size (one
    last-identity memo per member node plus at most one deferred instance
    per member).

    A reduced unit can carry a member *deeper* than some of the unit's
    children (e.g. a ``1``-labeled sibling merged in next to a ``*``
    branch).  That member's instance, reconstructed from a pass-through
    tuple, sorts *after* the tuple's terminal instance — and after child
    instances still to come — so it is deferred until the stream reaches
    its position (its group closes), keeping the emitted sequence
    nondecreasing.
    """
    positions = {name: i for i, name in enumerate(spec.column_names)}
    l_positions = [(level, positions[f"L{level}"]) for level in spec.l_levels]
    memo = {}
    pending = []  # deferred instances, kept sorted by key
    for row in rows:
        l_values = [(level, row[pos]) for level, pos in l_positions]
        depth = 0
        for level, value in l_values:
            if value is None:
                break
            depth = level
        if depth == 0:
            raise PlanError("tuple with no L tag cannot be decoded")
        terminal_index = tuple(value for _, value in l_values[:depth])
        path = spec.unit_paths.get(terminal_index)
        if path is None:
            raise PlanError(
                f"no unit with index {terminal_index} in stream {spec.label}"
            )
        decoded = []
        for unit in path:
            for member in unit.members:
                values = {
                    stv.name: row[positions[stv.name]]
                    for stv in member.args
                    if stv.name in positions
                }
                identity = tuple(values.get(s.name) for s in member.args)
                if memo.get(member.index) == identity:
                    continue
                memo[member.index] = identity
                decoded.append(
                    Instance(
                        key=layout.instance_key(member, values),
                        node=member,
                        values=values,
                    )
                )
        # The row pins everything up to its own sort position — the
        # terminal unit's *representative* (whose index is the row's L
        # prefix).  Merged members deeper than the representative sort
        # after rows still to come (e.g. a sibling subtree with a smaller
        # ordinal kept as its own unit), so they wait in ``pending``.
        representative = path[-1].representative
        rep_values = {
            stv.name: row[positions[stv.name]]
            for stv in representative.args
            if stv.name in positions
        }
        threshold = layout.instance_key(representative, rep_values)

        ready = [i for i in decoded if i.key <= threshold]
        pending.extend(i for i in decoded if i.key > threshold)
        pending.sort(key=lambda inst: inst.key)
        while pending and pending[0].key <= threshold:
            ready.append(pending.pop(0))
        ready.sort(key=lambda inst: inst.key)
        yield from ready
    pending.sort(key=lambda inst: inst.key)
    yield from pending


def merge_streams(instance_iterables):
    """K-way merge of per-stream instance sequences into document order."""
    return heapq.merge(*instance_iterables, key=lambda inst: inst.key)


class CountingIterator:
    """Wrap an iterator and count the items that pass through.

    The observability layer's per-stream-free way to report how many
    merged instances the tagger consumed: wrapping costs one integer
    increment per instance and is only installed when tracing or metrics
    are enabled, keeping the default path untouched.
    """

    __slots__ = ("_it", "count")

    def __init__(self, iterable):
        self._it = iter(iterable)
        self.count = 0

    def __iter__(self):
        return self

    def __next__(self):
        item = next(self._it)
        self.count += 1
        return item


class StreamInstanceCache:
    """LRU cache of decoded per-stream :class:`Instance` lists.

    The splice layer of incremental view maintenance: re-materializing a
    view after a mutation re-executes only the streams whose base tables
    changed, while every untouched stream's decoded instance sequence is
    replayed from here — the document-order merge then *splices* fresh and
    cached sequences back together, byte-identical to a cold run (the
    cached instances are exactly what decoding the identical rows would
    produce).  Callers key entries by (stream label, plan style, plan
    fingerprint, dependency generations), so a write moves the key of
    affected streams only.
    """

    def __init__(self, max_entries=512, max_bytes=None):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0

    @staticmethod
    def _size(value):
        """Bytes charged against ``max_bytes`` for one entry; the base
        class does not charge (entry-count bound only)."""
        return 0

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """The cached instance list for ``key``, or None."""
        with self._lock:
            instances = self._entries.get(key)
            if instances is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return instances

    def store(self, key, instances):
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= self._size(previous)
            self._entries[key] = instances
            self._bytes += self._size(instances)
            while self._entries and (
                len(self._entries) > self.max_entries
                or (self.max_bytes is not None
                    and self._bytes > self.max_bytes)
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= self._size(evicted)
                self.evictions += 1

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self):
        """Counters as a plain dict (for reports and metrics gauges)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self._bytes,
            }


class XmlDocumentCache(StreamInstanceCache):
    """LRU cache of fully tagged ``(xml, tagger)`` documents.

    The top layer of incremental maintenance: every partition of a view
    materializes the *identical* document (the system's central
    invariant), so the key carries no partition — only the serialization
    options and the dependency generations of every table the view reads,
    e.g. ``(root_tag, indent, database.dependency_key(view_tables))``.
    After a write, the first re-materialization re-tags (splicing
    unchanged streams via :class:`StreamInstanceCache`) and re-fills the
    moved key; every other plan of the same view then serves the document
    directly while its streams still execute live — simulated timings
    stay per-plan faithful, only the decode→merge→tag replay is skipped.
    Callers must bypass the cache for non-canonical output (degraded or
    shed streams).

    ``max_bytes`` additionally bounds the cache by total document size
    (the serving layer's process-wide budget): storing past the budget
    evicts least-recently-served documents first.
    """

    def __init__(self, max_entries=64, max_bytes=None):
        super().__init__(max_entries=max_entries, max_bytes=max_bytes)

    @staticmethod
    def _size(value):
        xml, _tagger = value
        return len(xml)


def iter_instances(tree, specs, row_sources, layout=None,
                   instance_cache=None, instance_keys=None):
    """The merged document-order instance iterator of a set of streams.

    ``row_sources`` may be materialized
    :class:`~repro.relational.connection.TupleStream` results or lazy
    :class:`~repro.relational.connection.TupleCursor` iterators — decoding
    pulls rows on demand either way, so with cursors the whole
    decode→merge pipeline runs in bounded memory (the heap holds one
    pending instance per stream).

    With a :class:`StreamInstanceCache` and per-spec ``instance_keys``
    (None entries opt a stream out), each stream's decoded instance list
    is served from the cache when its key matches and decoded-then-stored
    otherwise; the merge splices cached and fresh sequences
    transparently.  Cached streams are materialized lists — only the
    uncached path keeps the bounded-memory property.
    """
    if layout is None:
        layout = ComparatorLayout(tree)
    if instance_cache is None or instance_keys is None:
        return merge_streams(
            [decode_stream(spec, rows, layout)
             for spec, rows in zip(specs, row_sources)]
        )
    sources = []
    for spec, rows, key in zip(specs, row_sources, instance_keys):
        if key is None:
            sources.append(decode_stream(spec, rows, layout))
            continue
        cached = instance_cache.get(key)
        if cached is None:
            cached = list(decode_stream(spec, rows, layout))
            instance_cache.store(key, cached)
        sources.append(cached)
    return merge_streams(sources)
