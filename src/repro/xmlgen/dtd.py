"""A small DTD parser and validator.

Supports the subset needed for Fig. 2-style DTDs: element declarations with
sequence content models whose particles carry ``?``/``+``/``*`` multiplicity,
``#PCDATA``-only elements, and ``EMPTY``.  Used by tests and examples to
check that materialized views conform to the agreed exchange schema.
"""

import re
from dataclasses import dataclass

from repro.common.errors import DtdError, ValidationError


@dataclass(frozen=True)
class Particle:
    """One child slot in a sequence content model."""

    name: str
    multiplicity: str  # '1' | '?' | '+' | '*'

    def accepts_count(self, count):
        if self.multiplicity == "1":
            return count == 1
        if self.multiplicity == "?":
            return count <= 1
        if self.multiplicity == "+":
            return count >= 1
        return True


@dataclass(frozen=True)
class ElementDecl:
    name: str
    kind: str            # 'sequence' | 'pcdata' | 'empty' | 'mixed'
    particles: tuple     # of Particle (sequence only)


class Dtd:
    """A parsed DTD: element name -> declaration."""

    def __init__(self, elements):
        self.elements = dict(elements)

    def declaration(self, name):
        try:
            return self.elements[name]
        except KeyError:
            raise ValidationError(f"element <{name}> is not declared") from None


_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+([A-Za-z_][\w.-]*)\s+(EMPTY|\(.*?\)\*?)\s*>", re.DOTALL
)


def parse_dtd(text):
    """Parse DTD text into a :class:`Dtd`."""
    elements = {}
    for match in _ELEMENT_RE.finditer(text):
        name, model = match.group(1), match.group(2).strip()
        elements[name] = _parse_model(name, model)
    if not elements:
        raise DtdError("no element declarations found")
    return Dtd(elements)


def _parse_model(name, model):
    if model == "EMPTY":
        return ElementDecl(name, "empty", ())
    repeated = model.endswith(")*")
    if repeated:
        model = model[:-1]
    inner = model[1:-1].strip()
    if inner == "#PCDATA":
        return ElementDecl(name, "pcdata", ())
    if "#PCDATA" in inner:
        # Mixed content (#PCDATA | a | b)* — accept any declared mixture.
        parts = tuple(
            Particle(p.strip().rstrip("*"), "*")
            for p in inner.split("|")
            if "#PCDATA" not in p
        )
        return ElementDecl(name, "mixed", parts)
    particles = []
    for piece in _split_sequence(inner):
        piece = piece.strip()
        if not piece:
            continue
        multiplicity = "1"
        if piece[-1] in "?+*":
            multiplicity = piece[-1]
            piece = piece[:-1].strip()
        if not re.fullmatch(r"[A-Za-z_][\w.-]*", piece):
            raise DtdError(f"unsupported content particle {piece!r} in <{name}>")
        particles.append(Particle(piece, multiplicity))
    return ElementDecl(name, "sequence", tuple(particles))


def _split_sequence(inner):
    depth = 0
    current = []
    for char in inner:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            yield "".join(current)
            current = []
        else:
            current.append(char)
    yield "".join(current)


# ---------------------------------------------------------------------------
# Validation of serialized documents
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"<(/?)([A-Za-z_][\w.-]*)\s*>|([^<]+)")


def validate_document(xml_text, dtd, root=None):
    """Validate an XML string against ``dtd``.

    ``root`` optionally names a wrapper element that is allowed to contain
    any sequence of declared top elements (the facade's document root).
    Returns the number of elements validated; raises
    :class:`~repro.common.errors.ValidationError` on the first violation.
    """
    stack = []  # (name, child names, has_text)
    validated = 0
    for match in _TOKEN_RE.finditer(xml_text):
        closing, name, text = match.group(1), match.group(2), match.group(3)
        if text is not None:
            if text.strip() and stack:
                stack[-1][2] = True
            continue
        if not closing:
            if stack:
                stack[-1][1].append(name)
            stack.append([name, [], False])
        else:
            open_name, children, has_text = stack.pop()
            if open_name != name:
                raise ValidationError(
                    f"mismatched tags: <{open_name}> closed by </{name}>"
                )
            if root is not None and name == root and not stack:
                validated += 1
                continue
            _check_element(name, children, has_text, dtd)
            validated += 1
    if stack:
        raise ValidationError(f"unclosed element <{stack[-1][0]}>")
    return validated


def _check_element(name, children, has_text, dtd):
    decl = dtd.declaration(name)
    if decl.kind == "empty":
        if children or has_text:
            raise ValidationError(f"<{name}> must be EMPTY")
        return
    if decl.kind == "pcdata":
        if children:
            raise ValidationError(f"<{name}> may contain only character data")
        return
    if decl.kind == "mixed":
        allowed = {p.name for p in decl.particles}
        for child in children:
            if child not in allowed:
                raise ValidationError(f"<{name}> may not contain <{child}>")
        return
    if has_text:
        raise ValidationError(f"<{name}> has element-only content")
    position = 0
    for particle in decl.particles:
        count = 0
        while position < len(children) and children[position] == particle.name:
            count += 1
            position += 1
        if not particle.accepts_count(count):
            raise ValidationError(
                f"<{name}>: child <{particle.name}> occurs {count} time(s), "
                f"multiplicity is '{particle.multiplicity}'"
            )
    if position != len(children):
        raise ValidationError(
            f"<{name}>: unexpected child <{children[position]}>"
        )
