"""Source-capability-driven plan filtering (Sec. 3.4).

    "Some of the plans SilkRoute produces do not require outer union, outer
    join, or the ``with`` clause.  For example, a fully partitioned plan has
    no edges and requires none of these constructs.  Plans with no branches
    (i.e., no sibling nodes) do not require the union operator.  This
    characteristic is especially useful in a middle-ware system, because
    all SQL engines do not necessarily support all these constructs.  In
    those cases, SilkRoute chooses permissible plans based on the source
    description of the underlying RDBMS."

These predicates decide feature needs *structurally* from the partition —
without generating SQL — so the planner can restrict its search space up
front: a subtree needs an outer join iff it has any edge, and a union iff
some node has two or more kept children (sibling branches).
"""

from repro.core.partition import enumerate_partitions, partition_subtrees


def partition_requirements(tree, partition):
    """The SQL features a partition's plans need.

    Returns ``(needs_outer_join, needs_union)``.  View-tree reduction can
    only remove requirements (merged 1-edges disappear), so this is the
    conservative (non-reduced) answer.
    """
    needs_outer_join = len(partition.kept) > 0
    needs_union = False
    for subtree in partition_subtrees(tree, partition):
        for node in subtree.nodes:
            if len(subtree.kept_children(node)) >= 2:
                needs_union = True
    return needs_outer_join, needs_union


def is_permissible(tree, partition, source):
    """Can the target RDBMS run this partition's queries?"""
    needs_outer_join, needs_union = partition_requirements(tree, partition)
    if needs_outer_join and not source.supports_left_outer_join:
        return False
    if needs_union and not source.supports_union:
        return False
    return True


def permissible_partitions(tree, source):
    """All partitions the source description permits.

    With full support this is the whole 2^|E| space; without outer joins
    only the fully partitioned plan remains; without unions, only the
    partitions whose subtrees are chains (no sibling branches).
    """
    return [
        partition
        for partition in enumerate_partitions(tree)
        if is_permissible(tree, partition, source)
    ]


def restrict_greedy_plan(tree, plan, source):
    """Clip a greedy plan's family to the permissible members.

    Returns the (possibly empty) list of permissible partitions in the
    family; the caller falls back to the fully partitioned plan when the
    source supports nothing else.
    """
    return [
        partition
        for partition in plan.partitions()
        if is_permissible(tree, partition, source)
    ]
