"""The paper's contribution: view trees, partitioning, reduction, SQL
generation, the greedy plan-generation algorithm, and the SilkRoute facade.
"""

from repro.core.viewtree import ViewTree, ViewTreeNode, Stv, NodeRule, build_view_tree
from repro.core.labeling import label_view_tree, edge_label
from repro.core.partition import (
    Partition,
    Subtree,
    enumerate_partitions,
    partition_subtrees,
    unified_partition,
    fully_partitioned,
)
from repro.core.reduction import (
    ReducedSubtree,
    reduce_subtree,
    reduce_partition,
    suggest_keep,
)
from repro.core.sqlgen import SqlGenerator, StreamSpec, PlanStyle
from repro.core.greedy import GreedyPlanner, GreedyPlan, GreedyParameters
from repro.core.options import (
    UNSET,
    ExecutionOptions,
    RequestContext,
    resolve_options,
)
from repro.core.silkroute import (
    MaterializedView,
    PlanReport,
    SilkRoute,
    StreamReport,
    XmlView,
)

__all__ = [
    "ViewTree",
    "ViewTreeNode",
    "Stv",
    "NodeRule",
    "build_view_tree",
    "label_view_tree",
    "edge_label",
    "Partition",
    "Subtree",
    "enumerate_partitions",
    "partition_subtrees",
    "unified_partition",
    "fully_partitioned",
    "ReducedSubtree",
    "reduce_subtree",
    "reduce_partition",
    "suggest_keep",
    "SqlGenerator",
    "StreamSpec",
    "PlanStyle",
    "GreedyPlanner",
    "GreedyPlan",
    "GreedyParameters",
    "ExecutionOptions",
    "RequestContext",
    "UNSET",
    "resolve_options",
    "SilkRoute",
    "MaterializedView",
    "PlanReport",
    "StreamReport",
    "XmlView",
]
