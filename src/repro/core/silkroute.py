"""The SilkRoute facade: define an RXL view, pick a plan, get XML.

Ties the whole pipeline together (Fig. 7's architecture): RXL text → view
tree (+labels) → partition → SQL generation → execution over the connection
→ stream integration → tagging.  This is the public entry point a
downstream user works with::

    silk = SilkRoute(connection)
    view = silk.define_view(RXL_TEXT)
    result = view.materialize()            # greedy-chosen plan
    print(result.xml)
    print(result.report.total_ms)

Execution knobs can be passed individually or bundled in a frozen
:class:`~repro.core.options.ExecutionOptions` (``options=``); explicit
keywords override option fields.

Execution is *fault tolerant*: with a
:class:`~repro.relational.faults.FaultPolicy` installed on the connection
and a :class:`~repro.relational.faults.RetryPolicy` in play, transient
stream failures are retried with simulated backoff, repeat offenders are
circuit-broken, and a stream that exhausts its retries is *degraded* —
the failing subtree is re-planned into finer streams (consulting the
cached greedy family's optional edges first, then the full cut) whose
sorted outputs splice back into the k-way document merge.  The document
comes out byte-identical to the fault-free run, just later; only when a
single-node stream keeps failing does the
:class:`~repro.common.errors.TransientConnectionError` propagate, with
the partial :class:`PlanReport` attached.
"""

import time
from dataclasses import dataclass, field

from repro.common.errors import PlanError, TimeoutExceeded, tag_request
from repro.relational.replicas import resolve_admission, resolve_pool
from repro.core.greedy import GreedyPlanner
from repro.core.labeling import label_view_tree
from repro.core.options import UNSET, resolve_options
from repro.core.partition import (
    Partition,
    Subtree,
    enumerate_partitions,
    fully_partitioned,
    partition_subtrees,
    unified_partition,
)
from repro.core.sqlgen import SqlGenerator
from repro.core.viewtree import build_view_tree
from repro.obs import obs_parts
from repro.relational.cache import resolve_cache
from repro.relational.dispatch import execute_specs, simulated_makespan
from repro.relational.estimator import CostEstimator
from repro.relational.faults import CircuitBreaker
from repro.rxl.parser import parse_rxl
from repro.xmlgen.serializer import XmlWriter
from repro.xmlgen.streams import StreamInstanceCache, XmlDocumentCache
from repro.xmlgen.tagger import tag_streams


@dataclass
class StreamReport:
    """Timing, size, and resilience accounting of one executed stream.

    ``attempts`` counts submissions to the simulated source (0 when the
    result was replayed from the plan cache — ``from_cache``); ``retries``
    / ``faults`` / ``backoff_ms`` / ``fault_latency_ms`` are the
    resilience overhead, in simulated ms, on top of the fault-free
    ``server_ms``/``transfer_ms`` (which are unchanged by fault
    injection).

    Under a :class:`~repro.relational.replicas.ReplicaPool` dispatch,
    ``replica`` is the id that served the winning result, ``failovers``
    counts retries that moved to a different replica, and ``hedges`` /
    ``hedge_wins`` / ``hedge_wait_ms`` account the backup requests (a
    hedge loser charges nothing — see
    :class:`~repro.relational.faults.StreamAttemptStats`).

    When a real execution backend was selected
    (:mod:`repro.relational.backends`), ``backend`` names it and
    ``backend_wall_ms`` is the *measured wall-clock* of the stream's SQL
    on that backend — kept strictly apart from the simulated
    ``server_ms``/``transfer_ms``, which are byte-identical with and
    without a backend.  0.0 means the backend was not contacted (pure
    simulation, or a cache replay).
    """

    label: str
    rows: int
    server_ms: float
    transfer_ms: float
    sql: str = field(repr=False, default="")
    attempts: int = 1
    retries: int = 0
    faults: int = 0
    backoff_ms: float = 0.0
    fault_latency_ms: float = 0.0
    from_cache: bool = False
    replica: int = None
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_wait_ms: float = 0.0
    backend: str = None
    backend_wall_ms: float = 0.0


@dataclass
class PlanReport:
    """What happened when one plan was executed.

    ``query_ms`` / ``transfer_ms`` are the paper's figures — *sums* of the
    per-stream simulated times, independent of how the streams were
    dispatched, and identical with and without fault injection (retries
    re-submit until the clean execution succeeds).  ``elapsed_query_ms`` /
    ``elapsed_total_ms`` are the simulated elapsed times under the
    dispatch that actually ran (``workers`` concurrent submissions),
    *including* the resilience overhead — per-stream backoff and wasted
    fault latency, plus the submissions burned by streams that were
    degraded away.  ``wall_s`` is the real (harness) execution time — the
    only non-deterministic field.

    Resilience totals: ``attempts`` (source submissions, cache replays
    excluded), ``retries``, ``faults_injected``, ``backoff_ms``,
    ``fault_latency_ms``, and ``degraded_streams`` — the labels of
    streams that exhausted their retries and were re-planned into the
    finer streams found in ``streams``.  Replica totals: ``failovers``,
    ``hedges``, ``hedge_wins``, ``hedge_wait_ms`` (summed over the same
    per-stream stats, so they reconcile with the
    ``dispatch.failovers/hedges/hedge_wins`` metrics counters), and
    ``shed_streams`` — labels the admission controller refused to run.

    ``backend`` / ``backend_wall_ms`` summarize real-backend execution
    (:mod:`repro.relational.backends`): the backend name the plan's
    streams ran on (None for pure simulation) and the summed measured
    wall-clock of their SQL — real milliseconds, reported next to but
    never mixed into the simulated ``query_ms``/``transfer_ms``.

    ``obs`` is the :class:`~repro.obs.ObsOptions` observability session
    the execution ran under (None when tracing/metrics were off) — the
    *live* session object, so its trace and metrics snapshot are one
    attribute away from the report (``report.obs.profile()``,
    ``report.obs.metrics_snapshot()``); sessions reused across executions
    accumulate.
    """

    partition: Partition
    n_streams: int
    query_ms: float
    transfer_ms: float
    streams: list
    timed_out: bool = False
    #: Label of the stream whose subquery exceeded the budget (None unless
    #: ``timed_out``); ``streams`` then holds the reports of the streams
    #: completed before it, in spec order.
    timed_out_label: str = None
    workers: int = 1
    elapsed_query_ms: float = None
    elapsed_total_ms: float = None
    wall_s: float = None
    attempts: int = 0
    retries: int = 0
    faults_injected: int = 0
    backoff_ms: float = 0.0
    fault_latency_ms: float = 0.0
    degraded_streams: tuple = ()
    failovers: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_wait_ms: float = 0.0
    shed_streams: tuple = ()
    backend: str = None
    backend_wall_ms: float = 0.0
    obs: object = None

    @property
    def total_ms(self):
        """Query plus transfer time; explicitly ``nan`` for a timed-out
        report ("no time was reported") — check :attr:`timed_out` before
        aggregating."""
        if self.timed_out:
            return float("nan")
        return self.query_ms + self.transfer_ms


@dataclass
class MaterializedView:
    """The result of materializing a view: the document plus its report.

    For :meth:`XmlView.materialize_to` the document went to the caller's
    sink and ``xml`` is None.
    """

    xml: str
    report: PlanReport
    tagger: object = None


@dataclass
class _DispatchOutcome:
    """Internal result of the resilient dispatch loop."""

    specs: list
    streams: list
    stats: list
    degraded: tuple
    spent_stats: list       # stats burned by degraded-away streams
    timeout: object = None
    shed: tuple = ()        # labels the admission controller shed
    span: object = None     # the dispatch trace span (None when tracing off)


class XmlView:
    """One defined RXL view over a connection."""

    def __init__(self, silkroute, tree, rxl_text):
        self.silkroute = silkroute
        self.tree = tree
        self.rxl_text = rxl_text
        self._planners = {}
        self._greedy_plans = {}
        #: Decoded per-stream instance lists for the splice layer of
        #: incremental maintenance (used by :meth:`materialize` when a
        #: result cache is installed; keys carry per-table generations,
        #: so mutations move only the affected streams' keys).
        self._instances = StreamInstanceCache()
        #: Finished (xml, tagger) documents per (root_tag, indent,
        #: dependency generations of every table the view reads) — every
        #: partition materializes the identical document, so the key
        #: carries no partition and any plan can serve a fresh-enough one.
        self._documents = XmlDocumentCache()

    @property
    def instance_cache(self):
        """The view's :class:`~repro.xmlgen.streams.StreamInstanceCache`
        (the incremental-maintenance splice layer)."""
        return self._instances

    @property
    def document_cache(self):
        """The view's :class:`~repro.xmlgen.streams.XmlDocumentCache`
        (finished documents, keyed by data generations)."""
        return self._documents

    # -- plan space ---------------------------------------------------------------

    def unified_partition(self):
        return unified_partition(self.tree)

    def fully_partitioned(self):
        return fully_partitioned(self.tree)

    def enumerate_partitions(self):
        return enumerate_partitions(self.tree)

    def greedy_plan(self, params=None, style=UNSET, reduce=UNSET, keep=UNSET,
                    options=None, obs=UNSET):
        """Run the Sec. 5 algorithm; returns a
        :class:`repro.core.greedy.GreedyPlan`.

        The planner (and thus its per-component oracle memo) is cached per
        ``(style, reduce, keep)``, so repeated planning — e.g. exploring
        several threshold settings via ``params`` — reuses every oracle
        answer instead of re-estimating from scratch.  ``keep`` is passed
        through to the generator's reduction step (Sec. 3.5's
        reduction-prohibition list).  The returned plan *family* is also
        remembered: adaptive degradation consults it to re-plan a failing
        subtree along the family's optional edges.
        """
        opts = resolve_options(
            options, style=style, reduce=reduce, keep=keep, obs=obs
        )
        key = (opts.style, bool(opts.reduce), tuple(opts.keep))
        planner = self._planners.get(key)
        if planner is None:
            planner = GreedyPlanner(
                self.tree,
                self.silkroute.schema,
                self.silkroute.estimator,
                style=opts.style,
                reduce=opts.reduce,
                keep=opts.keep,
            )
            self._planners[key] = planner
        plan = planner.plan(params, tracer=obs_parts(opts.obs)[0])
        self._greedy_plans[key] = plan
        return plan

    # -- execution ------------------------------------------------------------------

    def explain(self, partition=None, style=UNSET, reduce=UNSET,
                use_with=False, options=None):
        """The SQL queries a plan would send, without executing them.

        ``use_with`` phrases shared node queries as common table
        expressions (requires a target whose source description supports
        the ``with`` clause)."""
        opts = resolve_options(
            options, defaults={"reduce": False}, style=style, reduce=reduce
        )
        partition = self._resolve_partition(partition, opts.style, opts.reduce)
        generator = SqlGenerator(
            self.tree, self.silkroute.schema, style=opts.style,
            reduce=opts.reduce, keep=opts.keep,
            tracer=obs_parts(opts.obs)[0],
        )
        specs = generator.streams_for_partition(partition)
        if use_with:
            return [spec.sql_with for spec in specs]
        return [spec.sql for spec in specs]

    def execute_partition(self, partition, style=UNSET, reduce=UNSET,
                          budget_ms=UNSET, workers=UNSET, retry=UNSET,
                          faults=UNSET, replicas=UNSET, hedge_ms=UNSET,
                          max_concurrent=UNSET, engine=UNSET,
                          batch_size=UNSET, backend=UNSET, options=None):
        """Execute one plan; returns ``(specs, streams, report)``.

        A subquery exceeding ``budget_ms`` (simulated server time) marks the
        report as timed out, mirroring the paper's "no time was reported".

        ``workers`` > 1 dispatches the plan's subqueries concurrently on a
        thread pool.  Specs, streams, and the report are identical to the
        sequential run (the simulated engine is deterministic and the
        result cache is single-flighted) except for the dispatch fields:
        ``report.elapsed_query_ms`` / ``elapsed_total_ms`` become the
        simulated makespan over ``workers`` workers — approaching
        ``max(server_ms)`` instead of ``sum(server_ms)`` — and ``wall_s``
        reflects the real concurrent execution.  Timeout semantics are
        preserved: the first stream (in spec order) to exceed the budget
        wins, and in-flight later streams are cancelled or drained.

        With ``retry`` (a :class:`~repro.relational.faults.RetryPolicy`)
        and a fault policy in play, transient failures are retried with
        simulated backoff; a stream that exhausts its retries is
        *degraded*: its subtree is re-planned into finer streams (the
        greedy family's optional edges are cut first, then every edge)
        which are executed in its place — the spliced specs/streams
        produce a byte-identical document.  If a single-node stream keeps
        failing, the
        :class:`~repro.common.errors.TransientConnectionError` propagates
        with the partial report attached (``exc.report``).  Without
        ``retry``, the first transient failure propagates the same way.

        ``backend`` additionally executes every stream's SQL on a real
        backend (``"sqlite"`` or a
        :class:`~repro.relational.backends.Backend` instance) and
        cross-validates the rows against the simulated oracle — specs,
        streams, simulated timings, and the document are byte-identical;
        the report gains the backend name and measured
        ``backend_wall_ms``.

        ``replicas``/``hedge_ms`` route the plan's streams over a
        health-checked :class:`~repro.relational.replicas.ReplicaPool`
        with failover and hedged backup requests; ``max_concurrent``
        puts an admission controller in front (clamping ``workers``,
        bounding the stream queue, and shedding streams past the
        per-query deadline with an
        :class:`~repro.common.errors.OverloadError` carrying the partial
        report).  Pooled runs produce byte-identical XML and identical
        ``query_ms``/``transfer_ms`` to the single-connection run.
        """
        opts = resolve_options(
            options, defaults={"reduce": False}, style=style, reduce=reduce,
            budget_ms=budget_ms, workers=workers, retry=retry, faults=faults,
            replicas=replicas, hedge_ms=hedge_ms,
            max_concurrent=max_concurrent, engine=engine,
            batch_size=batch_size, backend=backend,
        )
        opts = self._resolve_resilience(opts)
        self._configure_node_cache(opts)
        tracer, _ = obs_parts(opts.obs)
        generator = SqlGenerator(
            self.tree, self.silkroute.schema, style=opts.style,
            reduce=opts.reduce, keep=opts.keep, tracer=tracer,
        )
        with tracer.span("sqlgen", style=opts.style.value) as sqlgen_span:
            specs = generator.streams_for_partition(partition)
            sqlgen_span.set(streams=len(specs))
        self._check_source(specs)
        start = time.perf_counter()
        try:
            outcome = self._dispatch_resilient(
                generator, partition, specs, opts
            )
        except Exception as exc:
            self._tag_request(exc, opts)
            partial = getattr(exc, "partial_outcome", None)
            if partial is not None:
                exc.report = self._outcome_report(
                    partition, partial, opts,
                    wall_s=time.perf_counter() - start,
                )
                del exc.partial_outcome
            raise
        report = self._outcome_report(
            partition, outcome, opts, wall_s=time.perf_counter() - start
        )
        if outcome.timeout is not None:
            return outcome.specs, None, report
        return outcome.specs, outcome.streams, report

    def _check_source(self, specs):
        source = self.silkroute.source
        if source is not None:
            for spec in specs:
                source.check_plan_features(
                    spec.uses_outer_join(), spec.uses_union()
                )

    def _configure_node_cache(self, opts):
        """Apply the per-call node-result cache bounds, when set."""
        if (opts.node_cache_entries is not None
                or opts.retention_bytes is not None):
            self.silkroute.connection.engine.configure_node_cache(
                max_entries=opts.node_cache_entries,
                retention_bytes=opts.retention_bytes,
            )

    def _resolve_resilience(self, opts):
        """Normalize ``opts.replicas``/``opts.max_concurrent`` to live
        :class:`~repro.relational.replicas.ReplicaPool` /
        :class:`~repro.relational.replicas.AdmissionController` objects
        (idempotent — resolved instances pass through) and clamp
        ``workers`` to the admission policy so the dispatch width, the
        deadline schedule, and the report's makespans all agree."""
        pool = resolve_pool(opts.replicas, self.silkroute.connection)
        admission = resolve_admission(opts.max_concurrent)
        overrides = {}
        if pool is not opts.replicas:
            overrides["replicas"] = pool
        if admission is not opts.max_concurrent:
            overrides["max_concurrent"] = admission
        if admission is not None:
            clamped = admission.clamp_workers(opts.workers)
            if clamped != opts.workers:
                overrides["workers"] = clamped
        return opts.replace(**overrides) if overrides else opts

    def _dispatch_resilient(self, generator, partition, specs, opts):
        """Dispatch ``specs``, degrading failing subtrees until the plan
        completes, times out, or a stream fails undegradably.

        On an unrecoverable transient failure the raised error gets a
        ``partial_outcome`` attribute (consumed by
        :meth:`execute_partition`, which turns it into the attached
        partial report)."""
        connection = self.silkroute.connection
        breaker = CircuitBreaker() if opts.retry is not None else None
        pool = opts.replicas          # resolved by _resolve_resilience
        admission = opts.max_concurrent
        # One plan's rounds (including degradation re-dispatches) must all
        # see the same data: a concurrent mutation raises
        # StaleGenerationError instead of splicing mixed-generation
        # streams into one document.
        pinned_generations = connection.database.table_generations()
        pending = list(zip(specs, partition_subtrees(self.tree, partition)))
        done_specs, done_streams, done_stats = [], [], []
        degraded, spent_stats = [], []
        elapsed_rounds_ms = 0.0       # earlier rounds' makespan (deadline)
        n_workers = max(opts.workers or 1, 1)
        tracer, _ = obs_parts(opts.obs)
        dispatch_span = tracer.span(
            "dispatch", streams=len(specs), workers=n_workers,
        )

        def outcome(timeout=None, shed=()):
            return _DispatchOutcome(
                specs=done_specs, streams=done_streams, stats=done_stats,
                degraded=tuple(degraded), spent_stats=spent_stats,
                timeout=timeout, shed=tuple(shed),
                span=dispatch_span if tracer.enabled else None,
            )

        with dispatch_span:
            while True:
                result = execute_specs(
                    connection, [spec for spec, _ in pending],
                    budget_ms=opts.budget_ms, workers=opts.workers,
                    retry=opts.retry, faults=opts.faults, breaker=breaker,
                    obs=opts.obs, pool=pool, hedge_ms=opts.hedge_ms,
                    admission=admission,
                    admission_elapsed_ms=elapsed_rounds_ms,
                    engine=opts.engine, batch_size=opts.batch_size,
                    backend=opts.backend,
                    expect_generations=pinned_generations,
                    request=opts.request,
                )
                completed = len(result.streams)
                done_specs.extend(spec for spec, _ in pending[:completed])
                done_streams.extend(result.streams)
                done_stats.extend(result.stats)
                if (admission is not None
                        and admission.policy.deadline_ms is not None):
                    # Degradation re-dispatches count against the same
                    # per-query deadline: carry this round's simulated
                    # makespan into the next round's schedule offset.
                    elapsed_rounds_ms += simulated_makespan(
                        [
                            stream.server_ms + stream.transfer_ms
                            + st.backoff_ms + st.fault_latency_ms
                            + st.hedge_wait_ms
                            for stream, st in zip(
                                result.streams, result.stats
                            )
                        ],
                        n_workers,
                    )
                if result.timeout is not None:
                    dispatch_span.set(
                        timed_out=True,
                        timed_out_label=result.timeout.stream_label,
                    )
                    return outcome(timeout=result.timeout)
                if result.overload is not None:
                    dispatch_span.set(shed=result.shed)
                    overload = result.overload
                    overload.partial_outcome = outcome(shed=result.shed)
                    raise overload
                if result.failure is None:
                    if degraded:
                        dispatch_span.set(degraded=tuple(degraded))
                    return outcome()
                failure = result.failure
                failing_spec, failing_subtree = pending[result.failed_index]
                stats = getattr(failure, "stats", None)
                if stats is not None:
                    spent_stats.append(stats)
                finer = (
                    self._finer_subtrees(failing_subtree, opts)
                    if opts.retry is not None else None
                )
                if finer is None:
                    failure.partial_outcome = outcome()
                    raise failure
                degraded.append(failing_spec.label)
                finer_specs = [generator.stream_for_subtree(s) for s in finer]
                dispatch_span.event(
                    "degrade", label=failing_spec.label,
                    finer_streams=len(finer_specs),
                )
                self._check_source(finer_specs)
                pending = (
                    list(zip(finer_specs, finer))
                    + pending[result.failed_index + 1:]
                )

    def _finer_subtrees(self, subtree, opts):
        """The failing subtree re-planned into finer streams, or None when
        no finer split exists (a single node).

        Degradation follows the plan *family* (Sec. 4/5: ``genPlan``
        returns a family of semantically equivalent partitions): if the
        cached greedy plan for this (style, reduce, keep) marks optional
        edges inside the subtree, those are cut first — the family's own
        finer member.  Otherwise (or when that cut is the whole edge set)
        every edge of the subtree is cut, the maximally partitioned
        fallback.  Each round strictly shrinks the failing component, so
        repeated degradation terminates at single-node streams.
        """
        if len(subtree.nodes) == 1:
            return None
        inner = {
            node.index for node in subtree.nodes if node is not subtree.root
        }
        key = (opts.style, bool(opts.reduce), tuple(opts.keep))
        family = self._greedy_plans.get(key)
        kept = set()
        if family is not None:
            cut = inner & set(family.optional)
            if cut and cut != inner:
                kept = inner - cut
        components, assigned = [], {}
        for node in subtree.nodes:  # index-sorted: parents before children
            if node is not subtree.root and node.index in kept:
                component = assigned[node.parent.index]
                component.append(node)
            else:
                component = [node]
                components.append(component)
            assigned[node.index] = component
        return [Subtree(self.tree, nodes[0], nodes) for nodes in components]

    @staticmethod
    def _tag_request(exc, opts):
        """Stamp ``opts.request``'s tenant/request id onto ``exc`` (no-op
        without a request context; an earlier stamp wins)."""
        context = opts.request
        if context is not None:
            tag_request(
                exc,
                getattr(context, "tenant", None),
                getattr(context, "request_id", None),
            )
        return exc

    def _outcome_report(self, partition, outcome, opts, wall_s):
        """Build the :class:`PlanReport` for a dispatch outcome (complete,
        timed out, or the partial report of an unrecoverable failure)."""
        stats = outcome.stats
        reports = [
            StreamReport(
                label=spec.label,
                rows=len(stream),
                server_ms=stream.server_ms,
                transfer_ms=stream.transfer_ms,
                sql=spec.sql,
                attempts=st.attempts,
                retries=st.retries,
                faults=st.faults,
                backoff_ms=st.backoff_ms,
                fault_latency_ms=st.fault_latency_ms,
                from_cache=st.from_cache,
                replica=st.replica,
                failovers=st.failovers,
                hedges=st.hedges,
                hedge_wins=st.hedge_wins,
                hedge_wait_ms=st.hedge_wait_ms,
                backend=getattr(stream, "backend", None),
                backend_wall_ms=getattr(stream, "backend_wall_ms", 0.0),
            )
            for spec, stream, st in zip(
                outcome.specs, outcome.streams, stats
            )
        ]
        backend_name = next(
            (r.backend for r in reports if r.backend is not None), None
        )
        backend_wall_ms = sum(r.backend_wall_ms for r in reports)
        every_stats = list(stats) + list(outcome.spent_stats)
        n_workers = max(opts.workers or 1, 1)
        resilience = dict(
            attempts=sum(s.attempts for s in every_stats),
            retries=sum(s.retries for s in every_stats),
            faults_injected=sum(s.faults for s in every_stats),
            backoff_ms=sum(s.backoff_ms for s in every_stats),
            fault_latency_ms=sum(s.fault_latency_ms for s in every_stats),
            degraded_streams=tuple(outcome.degraded),
            failovers=sum(s.failovers for s in every_stats),
            hedges=sum(s.hedges for s in every_stats),
            hedge_wins=sum(s.hedge_wins for s in every_stats),
            hedge_wait_ms=sum(s.hedge_wait_ms for s in every_stats),
            shed_streams=tuple(outcome.shed),
            backend=backend_name,
            backend_wall_ms=backend_wall_ms,
        )
        if outcome.timeout is not None:
            nan = float("nan")
            return self._published_report(PlanReport(
                partition=partition,
                n_streams=len(outcome.specs) or len(outcome.streams),
                query_ms=nan,
                transfer_ms=nan,
                streams=reports,
                timed_out=True,
                timed_out_label=outcome.timeout.stream_label,
                workers=n_workers,
                elapsed_query_ms=nan,
                elapsed_total_ms=nan,
                wall_s=wall_s,
                obs=opts.obs,
                **resilience,
            ))
        streams = outcome.streams
        # Resilience overhead (backoff, wasted fault latency, hedge wait —
        # including the submissions burned by degraded-away streams) is
        # charged to the simulated elapsed clock, never to the paper's
        # query/transfer sums.
        overhead = [
            s.backoff_ms + s.fault_latency_ms + s.hedge_wait_ms
            for s in stats
        ] + [
            s.backoff_ms + s.fault_latency_ms + s.hedge_wait_ms
            for s in outcome.spent_stats
        ]
        query_durations = [
            stream.server_ms + extra
            for stream, extra in zip(streams, overhead)
        ] + overhead[len(streams):]
        total_durations = [
            stream.server_ms + stream.transfer_ms + extra
            for stream, extra in zip(streams, overhead)
        ] + overhead[len(streams):]
        report = PlanReport(
            partition=partition,
            n_streams=len(outcome.specs),
            query_ms=sum(s.server_ms for s in streams),
            transfer_ms=sum(s.transfer_ms for s in streams),
            streams=reports,
            workers=n_workers,
            elapsed_query_ms=simulated_makespan(query_durations, n_workers),
            elapsed_total_ms=simulated_makespan(total_durations, n_workers),
            wall_s=wall_s,
            obs=opts.obs,
            **resilience,
        )
        if outcome.span is not None:
            # The dispatch span learns its simulated makespan only now that
            # the report is assembled (Span.set_sim is legal after close).
            outcome.span.set_sim(report.elapsed_total_ms)
        return self._published_report(report)

    def _published_report(self, report):
        """Attach point-in-time cache gauges to the report's observability
        session, if any — keeping the metrics snapshot consistent with the
        cache the execution actually saw."""
        if report.obs is not None:
            metrics = obs_parts(report.obs)[1]
            cache = self.silkroute.connection.cache
            if cache is not None:
                cache.publish(metrics)
            self.silkroute.connection.engine.node_cache.publish(metrics)
        return report

    def materialize(self, partition=None, style=UNSET, reduce=UNSET,
                    root_tag="view", indent=None, budget_ms=UNSET,
                    greedy_params=None, workers=UNSET, retry=UNSET,
                    faults=UNSET, replicas=UNSET, hedge_ms=UNSET,
                    max_concurrent=UNSET, engine=UNSET, batch_size=UNSET,
                    backend=UNSET, options=None):
        """Materialize the view as XML.

        Without an explicit ``partition``, the greedy algorithm chooses the
        plan (its recommended member).  ``partition`` may also be the string
        ``"unified"`` or ``"fully-partitioned"``.  ``workers`` dispatches
        the plan's subqueries concurrently (see :meth:`execute_partition`);
        the produced document is identical either way.  Knobs may be
        bundled in an :class:`~repro.core.options.ExecutionOptions`
        (``options=``); explicit keywords win.

        With ``retry``/``faults`` (see :meth:`execute_partition`),
        transient stream failures are retried and degraded around: the
        produced XML is byte-identical to the fault-free run, and the
        report records ``attempts``/``retries``/``faults_injected``/
        ``backoff_ms``/``degraded_streams``.

        ``replicas``/``hedge_ms``/``max_concurrent`` run the plan over a
        replica pool under admission control (see
        :meth:`execute_partition`); the document stays byte-identical.

        On a budget overrun the raised
        :class:`~repro.common.errors.TimeoutExceeded` carries the partial
        :class:`PlanReport` (``exc.report``) and the label of the offending
        stream (``exc.stream_label``); an unrecoverable transient failure
        raises :class:`~repro.common.errors.TransientConnectionError` the
        same way, and admission shedding raises
        :class:`~repro.common.errors.OverloadError` likewise.
        """
        opts = resolve_options(
            options, style=style, reduce=reduce, budget_ms=budget_ms,
            workers=workers, retry=retry, faults=faults, replicas=replicas,
            hedge_ms=hedge_ms, max_concurrent=max_concurrent,
            engine=engine, batch_size=batch_size, backend=backend,
        )
        tracer, _ = obs_parts(opts.obs)
        with tracer.span("materialize") as root_span:
            partition = self._resolve_partition(
                partition, opts.style, opts.reduce, greedy_params,
                keep=opts.keep, obs=opts.obs,
            )
            specs, streams, report = self.execute_partition(
                partition, options=opts
            )
            if streams is None:
                raise self._tag_request(TimeoutExceeded(
                    opts.budget_ms, float("nan"),
                    stream_label=report.timed_out_label, report=report,
                ), opts)
            # With a result cache installed, decoded instance sequences are
            # kept per (stream, plan, dependency generations): after a
            # mutation only the affected streams decode again, the rest
            # splice from the cache — the merged document stays
            # byte-identical because cached instances are exactly what
            # re-decoding the identical rows would produce.  One level up,
            # the finished document is kept per (serialization options,
            # dependency generations of every table the view reads): every
            # partition of a view produces the identical document, so any
            # plan's re-materialization against unchanged generations can
            # serve it outright — execution above still ran live, so the
            # report's simulated timings stay per-plan faithful.  Degraded
            # or shed output is never canonical and bypasses the cache.
            instance_keys = doc_key = None
            if self.silkroute.cache is not None:
                query_engine = self.silkroute.connection.engine
                instance_keys = [
                    (spec.label, spec.style.value, spec.plan.fingerprint(),
                     query_engine.dependency_key(spec.plan))
                    for spec in specs
                ]
                if not report.degraded_streams and not report.shed_streams:
                    view_tables = frozenset().union(
                        *(query_engine.tables_for(spec.plan)
                          for spec in specs)
                    )
                    doc_key = (
                        root_tag, indent,
                        query_engine.database.dependency_key(view_tables),
                    )
                    cached_doc = self._documents.get(doc_key)
                    if cached_doc is not None:
                        xml, tagger = cached_doc
                        root_span.set(streams=len(specs), chars=len(xml),
                                      document_cached=True)
                        return MaterializedView(
                            xml=xml, report=report, tagger=tagger,
                        )
            xml, tagger = tag_streams(
                self.tree, specs, streams, root_tag=root_tag, indent=indent,
                obs=opts.obs, instance_cache=self._instances,
                instance_keys=instance_keys,
            )
            if doc_key is not None:
                self._documents.store(doc_key, (xml, tagger))
            root_span.set(streams=len(specs), chars=len(xml))
        return MaterializedView(xml=xml, report=report, tagger=tagger)

    def materialize_to(self, sink, partition=None, style=UNSET, reduce=UNSET,
                       root_tag="view", indent=None, budget_ms=UNSET,
                       greedy_params=None, faults=UNSET, replicas=UNSET,
                       max_concurrent=UNSET, engine=UNSET, batch_size=UNSET,
                       backend=UNSET, options=None):
        """Stream the view's XML into a file-like ``sink`` in bounded memory.

        The full pipeline runs lazily: each subquery executes through the
        engine's Volcano iterator
        (:meth:`~repro.relational.engine.QueryEngine.execute_iter`), decoded
        instances feed the k-way document-order merge, and the tagger
        writes to ``sink`` as it goes — so neither the tuple streams nor
        the document are ever held in memory and the paper's constant-space
        tagger bound (Sec. 3.3) survives end to end.  The bytes written are
        identical to ``materialize(...).xml``.

        Returns a :class:`MaterializedView` whose ``xml`` is None and whose
        report's per-stream timings match the materializing path
        bit-identically (the iterator engine charges operators in the batch
        engine's evaluation order).  On a
        budget overrun the raised
        :class:`~repro.common.errors.TimeoutExceeded` carries the partial
        report; streams the merge had not yet finished appear with the
        rows/charges consumed so far.  Either way the abandoned cursors
        are closed, releasing their pipeline-breaker buffers.

        The streaming path has no retry/degradation layer (a half-written
        sink cannot be retried transparently): with a fault policy in
        play, a drawn failure raises
        :class:`~repro.common.errors.TransientConnectionError` directly —
        use :meth:`materialize` when resilience matters more than constant
        memory.  ``replicas`` routes cursor *opening* to the pool's
        best-ranked replica (no hedging or failover, for the same
        reason); ``max_concurrent`` applies the admission queue bound —
        an overflowing plan raises
        :class:`~repro.common.errors.OverloadError` before any cursor
        opens.
        """
        opts = resolve_options(
            options, style=style, reduce=reduce, budget_ms=budget_ms,
            faults=faults, replicas=replicas, max_concurrent=max_concurrent,
            engine=engine, batch_size=batch_size, backend=backend,
        )
        opts = self._resolve_resilience(opts)
        tracer, _ = obs_parts(opts.obs)
        with tracer.span("materialize_to") as root_span:
            partition = self._resolve_partition(
                partition, opts.style, opts.reduce, greedy_params,
                keep=opts.keep, obs=opts.obs,
            )
            generator = SqlGenerator(
                self.tree, self.silkroute.schema, style=opts.style,
                reduce=opts.reduce, keep=opts.keep, tracer=tracer,
            )
            with tracer.span("sqlgen", style=opts.style.value) as sqlgen_span:
                specs = generator.streams_for_partition(partition)
                sqlgen_span.set(streams=len(specs))
            self._check_source(specs)
            connection = self.silkroute.connection
            pool = opts.replicas          # resolved by _resolve_resilience
            admission = opts.max_concurrent
            if admission is not None:
                overload = admission.admit_queue(specs)
                if overload is not None:
                    tracer.event(
                        "shed", reason="queue", streams=len(overload.shed),
                    )
                    # Every shed path carries a (here: empty) partial
                    # report, so callers can account shed streams without
                    # special-casing the streaming front end.
                    nan = float("nan")
                    overload.report = self._published_report(PlanReport(
                        partition=partition, n_streams=len(specs),
                        query_ms=nan, transfer_ms=nan, streams=[],
                        shed_streams=overload.shed, obs=opts.obs,
                    ))
                    raise self._tag_request(overload, opts)
            epoch = pool.begin_epoch() if pool is not None else None
            writer = XmlWriter(sink=sink, indent=indent)
            start = time.perf_counter()
            cursors = []
            try:
                # The dispatch span brackets cursor *opening* only: on the
                # streaming path the subqueries execute lazily, inside the
                # merge/tag spans that drain them.
                with tracer.span(
                    "dispatch", streams=len(specs), streaming=True,
                ):
                    for spec in specs:
                        if pool is not None:
                            replica = epoch.pick()
                            cursor_conn = pool.connections[replica]
                            cursor_faults = pool.policy_for(
                                replica, opts.faults
                            )
                        else:
                            cursor_conn = connection
                            cursor_faults = (
                                opts.faults
                                if opts.faults is not None else None
                            )
                        cursors.append(
                            cursor_conn.execute_iter(
                                spec.plan,
                                compact_rows=spec.compact,
                                budget_ms=opts.budget_ms,
                                sql=spec.sql,
                                label=spec.label,
                                faults=cursor_faults,
                                obs=opts.obs,
                                engine=opts.engine,
                                batch_size=opts.batch_size,
                                backend=opts.backend,
                            )
                        )
                _, tagger = tag_streams(
                    self.tree, specs, cursors, root_tag=root_tag,
                    writer=writer, obs=opts.obs,
                )
            except TimeoutExceeded as exc:
                exc.report = self._cursor_report(
                    partition, specs, cursors, timed_out=True,
                    timed_out_label=exc.stream_label,
                    wall_s=time.perf_counter() - start, obs=opts.obs,
                )
                for cursor in cursors:
                    cursor.close()
                raise self._tag_request(exc, opts)
            except Exception as exc:
                for cursor in cursors:
                    cursor.close()
                self._tag_request(exc, opts)
                raise
            report = self._cursor_report(
                partition, specs, cursors, timed_out=False,
                timed_out_label=None, wall_s=time.perf_counter() - start,
                obs=opts.obs,
            )
            root_span.set(streams=len(specs))
        return MaterializedView(xml=None, report=report, tagger=tagger)

    def _cursor_report(self, partition, specs, cursors, timed_out,
                       timed_out_label, wall_s, obs=None):
        reports = [
            StreamReport(
                label=spec.label,
                rows=cursor.rows_read,
                server_ms=cursor.server_ms,
                transfer_ms=cursor.transfer_ms,
                sql=spec.sql,
                backend=getattr(cursor, "backend", None),
                backend_wall_ms=getattr(cursor, "backend_wall_ms", 0.0),
            )
            for spec, cursor in zip(specs, cursors)
        ]
        metrics = obs_parts(obs)[1]
        for cursor in cursors:
            metrics.inc("dispatch.attempts")
            metrics.inc("streams.executed")
            metrics.inc("tuples.transferred", cursor.rows_read)
            metrics.observe("stream.query_ms", cursor.server_ms)
            metrics.observe("stream.transfer_ms", cursor.transfer_ms)
        nan = float("nan")
        return self._published_report(PlanReport(
            partition=partition,
            n_streams=len(specs),
            query_ms=nan if timed_out else sum(c.server_ms for c in cursors),
            transfer_ms=(
                nan if timed_out else sum(c.transfer_ms for c in cursors)
            ),
            streams=reports,
            timed_out=timed_out,
            timed_out_label=timed_out_label,
            elapsed_query_ms=(
                nan if timed_out else sum(c.server_ms for c in cursors)
            ),
            elapsed_total_ms=(
                nan if timed_out else sum(c.total_ms for c in cursors)
            ),
            wall_s=wall_s,
            attempts=len(cursors),
            backend=next(
                (r.backend for r in reports if r.backend is not None), None
            ),
            backend_wall_ms=sum(r.backend_wall_ms for r in reports),
            obs=obs,
        ))

    def query(self, xmlql_text, root_tag="result", indent=None):
        """Run an XML-QL query against this view *virtually* (Sec. 7):
        the pattern is composed with the view definition and evaluated as
        one SQL query — the view is never materialized.  Returns an
        :class:`repro.xmlql.executor.XmlQlResult`."""
        from repro.xmlql.executor import execute_xmlql

        return execute_xmlql(
            xmlql_text, self.tree, self.silkroute.connection,
            root_tag=root_tag, indent=indent,
        )

    def _resolve_partition(self, partition, style, reduce, greedy_params=None,
                           keep=(), obs=None):
        if partition is None:
            return self.greedy_plan(
                greedy_params, style=style, reduce=reduce, keep=keep, obs=obs
            ).recommended()
        if isinstance(partition, str):
            named = {
                "unified": unified_partition,
                "fully-partitioned": fully_partitioned,
            }
            if partition not in named:
                raise PlanError(
                    f"unknown strategy {partition!r}; use 'unified' or "
                    "'fully-partitioned'"
                )
            return named[partition](self.tree)
        return partition


class SilkRoute:
    """The middle-ware system: a connection plus view definitions.

    Cache wiring is one flow, shared with ``Connection(cache=...)`` and
    ``sweep_partitions(cache=...)``: the cache lives in exactly one slot —
    the connection engine's
    :attr:`~repro.relational.engine.QueryEngine.cache` — and every entry
    point normalizes through
    :func:`~repro.relational.cache.resolve_cache`: ``True`` installs a
    fresh :class:`~repro.relational.cache.PlanResultCache`, an instance is
    shared as-is (repeated materializations and virtual queries replay
    previously executed plans with byte-identical results and simulated
    timings), ``False`` uninstalls, and ``None`` leaves the connection's
    current cache untouched.
    """

    def __init__(self, connection, source=None, estimator=None, cache=None):
        self.connection = connection
        self.schema = connection.database.schema
        self.source = source
        self.estimator = estimator or CostEstimator(
            connection.database, connection.engine.cost_model
        )
        if cache is not None:
            self.cache = cache

    @property
    def cache(self):
        """The connection engine's result cache (or None)."""
        return self.connection.cache

    @cache.setter
    def cache(self, cache):
        self.connection.cache = resolve_cache(cache)

    @property
    def faults(self):
        """The connection's installed
        :class:`~repro.relational.faults.FaultPolicy` (or None)."""
        return self.connection.faults

    @faults.setter
    def faults(self, policy):
        self.connection.faults = policy

    def define_view(self, rxl_text, simplify_args=False):
        """Parse, validate, and label an RXL view definition."""
        query = parse_rxl(rxl_text)
        tree = build_view_tree(
            query, self.schema, validate=True, simplify_args=simplify_args
        )
        label_view_tree(tree, self.schema)
        return XmlView(self, tree, rxl_text)
