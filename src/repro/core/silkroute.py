"""The SilkRoute facade: define an RXL view, pick a plan, get XML.

Ties the whole pipeline together (Fig. 7's architecture): RXL text → view
tree (+labels) → partition → SQL generation → execution over the connection
→ stream integration → tagging.  This is the public entry point a
downstream user works with::

    silk = SilkRoute(connection)
    view = silk.define_view(RXL_TEXT)
    result = view.materialize()            # greedy-chosen plan
    print(result.xml)
    print(result.report.total_ms)
"""

import time
from dataclasses import dataclass, field

from repro.common.errors import PlanError, TimeoutExceeded
from repro.core.greedy import GreedyParameters, GreedyPlanner
from repro.core.labeling import label_view_tree
from repro.core.partition import (
    Partition,
    enumerate_partitions,
    fully_partitioned,
    partition_subtrees,
    unified_partition,
)
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.core.viewtree import build_view_tree
from repro.relational.cache import PlanResultCache
from repro.relational.dispatch import execute_specs, simulated_makespan
from repro.relational.estimator import CostEstimator
from repro.rxl.parser import parse_rxl
from repro.xmlgen.serializer import XmlWriter
from repro.xmlgen.tagger import tag_streams


@dataclass
class StreamReport:
    """Timing and size of one executed tuple stream."""

    label: str
    rows: int
    server_ms: float
    transfer_ms: float
    sql: str = field(repr=False, default="")


@dataclass
class PlanReport:
    """What happened when one plan was executed.

    ``query_ms`` / ``transfer_ms`` are the paper's figures — *sums* of the
    per-stream simulated times, independent of how the streams were
    dispatched.  ``elapsed_query_ms`` / ``elapsed_total_ms`` are the
    simulated elapsed times under the dispatch that actually ran
    (``workers`` concurrent submissions): equal to the sums sequentially,
    approaching the per-stream max with enough workers.  ``wall_s`` is the
    real (harness) execution time — the only non-deterministic field.
    """

    partition: Partition
    n_streams: int
    query_ms: float
    transfer_ms: float
    streams: list
    timed_out: bool = False
    #: Label of the stream whose subquery exceeded the budget (None unless
    #: ``timed_out``); ``streams`` then holds the reports of the streams
    #: completed before it, in spec order.
    timed_out_label: str = None
    workers: int = 1
    elapsed_query_ms: float = None
    elapsed_total_ms: float = None
    wall_s: float = None

    @property
    def total_ms(self):
        """Query plus transfer time; explicitly ``nan`` for a timed-out
        report ("no time was reported") — check :attr:`timed_out` before
        aggregating."""
        if self.timed_out:
            return float("nan")
        return self.query_ms + self.transfer_ms


@dataclass
class MaterializedView:
    """The result of materializing a view: the document plus its report.

    For :meth:`XmlView.materialize_to` the document went to the caller's
    sink and ``xml`` is None.
    """

    xml: str
    report: PlanReport
    tagger: object = None


class XmlView:
    """One defined RXL view over a connection."""

    def __init__(self, silkroute, tree, rxl_text):
        self.silkroute = silkroute
        self.tree = tree
        self.rxl_text = rxl_text
        self._planners = {}

    # -- plan space ---------------------------------------------------------------

    def unified_partition(self):
        return unified_partition(self.tree)

    def fully_partitioned(self):
        return fully_partitioned(self.tree)

    def enumerate_partitions(self):
        return enumerate_partitions(self.tree)

    def greedy_plan(self, params=None, style=PlanStyle.OUTER_JOIN, reduce=True,
                    keep=()):
        """Run the Sec. 5 algorithm; returns a
        :class:`repro.core.greedy.GreedyPlan`.

        The planner (and thus its per-component oracle memo) is cached per
        ``(style, reduce, keep)``, so repeated planning — e.g. exploring
        several threshold settings via ``params`` — reuses every oracle
        answer instead of re-estimating from scratch.  ``keep`` is passed
        through to the generator's reduction step (Sec. 3.5's
        reduction-prohibition list).
        """
        key = (style, bool(reduce), tuple(keep))
        planner = self._planners.get(key)
        if planner is None:
            planner = GreedyPlanner(
                self.tree,
                self.silkroute.schema,
                self.silkroute.estimator,
                style=style,
                reduce=reduce,
                keep=keep,
            )
            self._planners[key] = planner
        return planner.plan(params)

    # -- execution ------------------------------------------------------------------

    def explain(self, partition=None, style=PlanStyle.OUTER_JOIN,
                reduce=False, use_with=False):
        """The SQL queries a plan would send, without executing them.

        ``use_with`` phrases shared node queries as common table
        expressions (requires a target whose source description supports
        the ``with`` clause)."""
        partition = self._resolve_partition(partition, style, reduce)
        generator = SqlGenerator(
            self.tree, self.silkroute.schema, style=style, reduce=reduce
        )
        specs = generator.streams_for_partition(partition)
        if use_with:
            return [spec.sql_with for spec in specs]
        return [spec.sql for spec in specs]

    def execute_partition(self, partition, style=PlanStyle.OUTER_JOIN,
                          reduce=False, budget_ms=None, workers=None):
        """Execute one plan; returns ``(specs, streams, report)``.

        A subquery exceeding ``budget_ms`` (simulated server time) marks the
        report as timed out, mirroring the paper's "no time was reported".

        ``workers`` > 1 dispatches the plan's subqueries concurrently on a
        thread pool.  Specs, streams, and the report are identical to the
        sequential run (the simulated engine is deterministic and the
        result cache is single-flighted) except for the dispatch fields:
        ``report.elapsed_query_ms`` / ``elapsed_total_ms`` become the
        simulated makespan over ``workers`` workers — approaching
        ``max(server_ms)`` instead of ``sum(server_ms)`` — and ``wall_s``
        reflects the real concurrent execution.  Timeout semantics are
        preserved: the first stream (in spec order) to exceed the budget
        wins, and in-flight later streams are cancelled or drained.
        """
        generator = SqlGenerator(
            self.tree, self.silkroute.schema, style=style, reduce=reduce
        )
        specs = generator.streams_for_partition(partition)
        source = self.silkroute.source
        if source is not None:
            for spec in specs:
                source.check_plan_features(
                    spec.uses_outer_join(), spec.uses_union()
                )
        start = time.perf_counter()
        streams, timeout = execute_specs(
            self.silkroute.connection, specs,
            budget_ms=budget_ms, workers=workers,
        )
        wall_s = time.perf_counter() - start
        reports = [
            StreamReport(
                label=spec.label,
                rows=len(stream),
                server_ms=stream.server_ms,
                transfer_ms=stream.transfer_ms,
                sql=spec.sql,
            )
            for spec, stream in zip(specs, streams)
        ]
        n_workers = max(workers or 1, 1)
        if timeout is not None:
            report = PlanReport(
                partition=partition,
                n_streams=len(specs),
                query_ms=float("nan"),
                transfer_ms=float("nan"),
                streams=reports,
                timed_out=True,
                timed_out_label=timeout.stream_label,
                workers=n_workers,
                elapsed_query_ms=float("nan"),
                elapsed_total_ms=float("nan"),
                wall_s=wall_s,
            )
            return specs, None, report
        report = PlanReport(
            partition=partition,
            n_streams=len(specs),
            query_ms=sum(s.server_ms for s in streams),
            transfer_ms=sum(s.transfer_ms for s in streams),
            streams=reports,
            workers=n_workers,
            elapsed_query_ms=simulated_makespan(
                (s.server_ms for s in streams), n_workers
            ),
            elapsed_total_ms=simulated_makespan(
                (s.server_ms + s.transfer_ms for s in streams), n_workers
            ),
            wall_s=wall_s,
        )
        return specs, streams, report

    def materialize(self, partition=None, style=PlanStyle.OUTER_JOIN,
                    reduce=True, root_tag="view", indent=None,
                    budget_ms=None, greedy_params=None, workers=None):
        """Materialize the view as XML.

        Without an explicit ``partition``, the greedy algorithm chooses the
        plan (its recommended member).  ``partition`` may also be the string
        ``"unified"`` or ``"fully-partitioned"``.  ``workers`` dispatches
        the plan's subqueries concurrently (see :meth:`execute_partition`);
        the produced document is identical either way.

        On a budget overrun the raised
        :class:`~repro.common.errors.TimeoutExceeded` carries the partial
        :class:`PlanReport` (``exc.report``) and the label of the offending
        stream (``exc.stream_label``).
        """
        partition = self._resolve_partition(
            partition, style, reduce, greedy_params
        )
        specs, streams, report = self.execute_partition(
            partition, style=style, reduce=reduce, budget_ms=budget_ms,
            workers=workers,
        )
        if streams is None:
            raise TimeoutExceeded(
                budget_ms, float("nan"),
                stream_label=report.timed_out_label, report=report,
            )
        xml, tagger = tag_streams(
            self.tree, specs, streams, root_tag=root_tag, indent=indent
        )
        return MaterializedView(xml=xml, report=report, tagger=tagger)

    def materialize_to(self, sink, partition=None, style=PlanStyle.OUTER_JOIN,
                       reduce=True, root_tag="view", indent=None,
                       budget_ms=None, greedy_params=None):
        """Stream the view's XML into a file-like ``sink`` in bounded memory.

        The full pipeline runs lazily: each subquery executes through the
        engine's Volcano iterator
        (:meth:`~repro.relational.engine.QueryEngine.execute_iter`), decoded
        instances feed the k-way document-order merge, and the tagger
        writes to ``sink`` as it goes — so neither the tuple streams nor
        the document are ever held in memory and the paper's constant-space
        tagger bound (Sec. 3.3) survives end to end.  The bytes written are
        identical to ``materialize(...).xml``.

        Returns a :class:`MaterializedView` whose ``xml`` is None and whose
        report's per-stream timings match the materializing path
        bit-identically (the iterator engine charges operators in the batch
        engine's evaluation order).  On a
        budget overrun the raised
        :class:`~repro.common.errors.TimeoutExceeded` carries the partial
        report; streams the merge had not yet finished appear with the
        rows/charges consumed so far.
        """
        partition = self._resolve_partition(
            partition, style, reduce, greedy_params
        )
        generator = SqlGenerator(
            self.tree, self.silkroute.schema, style=style, reduce=reduce
        )
        specs = generator.streams_for_partition(partition)
        source = self.silkroute.source
        if source is not None:
            for spec in specs:
                source.check_plan_features(
                    spec.uses_outer_join(), spec.uses_union()
                )
        connection = self.silkroute.connection
        writer = XmlWriter(sink=sink, indent=indent)
        start = time.perf_counter()
        cursors = []
        try:
            for spec in specs:
                cursors.append(
                    connection.execute_iter(
                        spec.plan,
                        compact_rows=spec.compact,
                        budget_ms=budget_ms,
                        sql=spec.sql,
                        label=spec.label,
                    )
                )
            _, tagger = tag_streams(
                self.tree, specs, cursors, root_tag=root_tag, writer=writer
            )
        except TimeoutExceeded as exc:
            exc.report = self._cursor_report(
                partition, specs, cursors, timed_out=True,
                timed_out_label=exc.stream_label,
                wall_s=time.perf_counter() - start,
            )
            raise
        report = self._cursor_report(
            partition, specs, cursors, timed_out=False, timed_out_label=None,
            wall_s=time.perf_counter() - start,
        )
        return MaterializedView(xml=None, report=report, tagger=tagger)

    def _cursor_report(self, partition, specs, cursors, timed_out,
                       timed_out_label, wall_s):
        reports = [
            StreamReport(
                label=spec.label,
                rows=cursor.rows_read,
                server_ms=cursor.server_ms,
                transfer_ms=cursor.transfer_ms,
                sql=spec.sql,
            )
            for spec, cursor in zip(specs, cursors)
        ]
        nan = float("nan")
        return PlanReport(
            partition=partition,
            n_streams=len(specs),
            query_ms=nan if timed_out else sum(c.server_ms for c in cursors),
            transfer_ms=(
                nan if timed_out else sum(c.transfer_ms for c in cursors)
            ),
            streams=reports,
            timed_out=timed_out,
            timed_out_label=timed_out_label,
            elapsed_query_ms=(
                nan if timed_out else sum(c.server_ms for c in cursors)
            ),
            elapsed_total_ms=(
                nan if timed_out else sum(c.total_ms for c in cursors)
            ),
            wall_s=wall_s,
        )

    def query(self, xmlql_text, root_tag="result", indent=None):
        """Run an XML-QL query against this view *virtually* (Sec. 7):
        the pattern is composed with the view definition and evaluated as
        one SQL query — the view is never materialized.  Returns an
        :class:`repro.xmlql.executor.XmlQlResult`."""
        from repro.xmlql.executor import execute_xmlql

        return execute_xmlql(
            xmlql_text, self.tree, self.silkroute.connection,
            root_tag=root_tag, indent=indent,
        )

    def _resolve_partition(self, partition, style, reduce, greedy_params=None):
        if partition is None:
            return self.greedy_plan(
                greedy_params, style=style, reduce=reduce
            ).recommended()
        if isinstance(partition, str):
            named = {
                "unified": unified_partition,
                "fully-partitioned": fully_partitioned,
            }
            if partition not in named:
                raise PlanError(
                    f"unknown strategy {partition!r}; use 'unified' or "
                    "'fully-partitioned'"
                )
            return named[partition](self.tree)
        return partition


class SilkRoute:
    """The middle-ware system: a connection plus view definitions.

    ``cache=True`` installs a fresh
    :class:`~repro.relational.cache.PlanResultCache` on the connection's
    engine (pass an instance to share one across systems): repeated
    materializations and virtual queries replay previously executed plans
    with byte-identical results and simulated timings.
    """

    def __init__(self, connection, source=None, estimator=None, cache=None):
        self.connection = connection
        self.schema = connection.database.schema
        self.source = source
        self.estimator = estimator or CostEstimator(
            connection.database, connection.engine.cost_model
        )
        if cache is True:
            connection.engine.cache = PlanResultCache()
        elif cache is not None and cache is not False:
            # An instance (possibly empty — len() is falsy) to be shared.
            connection.engine.cache = cache

    @property
    def cache(self):
        """The connection engine's result cache (or None)."""
        return self.connection.engine.cache

    def define_view(self, rxl_text, simplify_args=False):
        """Parse, validate, and label an RXL view definition."""
        query = parse_rxl(rxl_text)
        tree = build_view_tree(
            query, self.schema, validate=True, simplify_args=simplify_args
        )
        label_view_tree(tree, self.schema)
        return XmlView(self, tree, rxl_text)
