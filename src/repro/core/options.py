"""One options object for the whole execution surface.

The execution-facing methods (``XmlView.materialize``, ``materialize_to``,
``execute_partition``, ``explain``, ``greedy_plan``,
``repro.bench.sweep.sweep_partitions``) historically grew the same keyword
sprawl — ``style``, ``reduce``, ``budget_ms``, ``workers``, and now
``retry``/``faults``.  :class:`ExecutionOptions` consolidates them: build
one frozen object, pass it as ``options=`` everywhere, share it across
calls and threads.

Explicit keyword arguments always win over option fields, so existing
call sites keep working unchanged and one-off overrides stay cheap::

    opts = ExecutionOptions(budget_ms=300_000, workers=4,
                            retry=RetryPolicy(max_attempts=3))
    view.materialize(options=opts)                   # uses everything
    view.materialize(options=opts, workers=1)        # one-off override

Methods keep their historical per-method defaults (``explain`` and
``execute_partition`` default ``reduce=False``; the materializers default
``reduce=True``) — those apply only when neither the keyword nor an
``options`` object supplies a value.
"""

from dataclasses import dataclass, fields

from repro.core.sqlgen import PlanStyle


class _Unset:
    """Sentinel distinguishing 'not passed' from explicit None/False."""

    __slots__ = ()

    def __repr__(self):
        return "<unset>"


#: The module-wide sentinel used as the default of every overridable
#: keyword on the execution surface.
UNSET = _Unset()


@dataclass(frozen=True)
class RequestContext:
    """Identity of one client request flowing through the service.

    The serving layer (:mod:`repro.serve`) attaches one of these to the
    :class:`ExecutionOptions` it executes under (``request=``) so that
    errors raised deep inside dispatch worker threads —
    :class:`~repro.common.errors.OverloadError`,
    :class:`~repro.common.errors.StaleGenerationError`,
    :class:`~repro.common.errors.TimeoutExceeded` — surface carrying the
    originating ``tenant`` and ``request_id`` (see
    :func:`~repro.common.errors.tag_request`).  Frozen and hashable, like
    everything else in the options bundle.
    """

    tenant: str = None
    request_id: str = None


@dataclass(frozen=True)
class ExecutionOptions:
    """Frozen bundle of execution knobs.

    ``style``/``reduce``/``keep`` select and reduce the SQL generation,
    ``budget_ms`` is the per-subquery simulated timeout, ``workers``
    dispatches subqueries (or sweep partitions) concurrently,
    ``retry``/``faults`` are the resilience policies
    (:class:`~repro.relational.faults.RetryPolicy` /
    :class:`~repro.relational.faults.FaultPolicy`), and ``obs`` is an
    optional :class:`~repro.obs.ObsOptions` observability session
    (tracing/metrics; None — the default — keeps the no-op fast path).

    The replica serving layer adds three knobs, normalized by
    :func:`~repro.relational.replicas.resolve_pool` /
    :func:`~repro.relational.replicas.resolve_admission`: ``replicas``
    (an integer replica count, a
    :class:`~repro.relational.replicas.ReplicaSet`, or a
    :class:`~repro.relational.replicas.ReplicaPool`), ``hedge_ms`` (the
    simulated latency past which a backup request is hedged on a second
    replica), and ``max_concurrent`` (an integer stream cap, an
    :class:`~repro.relational.replicas.AdmissionPolicy`, or an
    :class:`~repro.relational.replicas.AdmissionController`).

    The execution-engine knobs are pure performance switches — results,
    simulated timings, and cache entries are identical either way:
    ``engine`` selects row-at-a-time (``"tuple"``) or vectorized columnar
    (``"batch"``) plan evaluation, and ``batch_size`` the chunk size of
    the batch kernels.  ``None`` (the default) defers to the connection's
    :class:`~repro.relational.engine.QueryEngine` defaults.  ``backend``
    selects where the generated SQL is *also* executed for real
    (:mod:`repro.relational.backends`) — cross-validated against the
    simulated oracle, wall-clock recorded separately, results and
    simulated timings untouched.

    The incremental-maintenance knobs bound the batch engine's
    :class:`~repro.relational.cache.NodeResultCache`:
    ``node_cache_entries`` caps the entry count (default 4096) and
    ``retention_bytes`` is the workload-driven byte budget applied after
    each mutation's invalidation pass — surviving sub-plan results are
    scored hottest-per-byte and only the best are retained.  ``None``
    leaves the engine's current bounds unchanged.

    Hashable as long as its fields are, so it can key plan caches
    (``ObsOptions`` hashes by identity).
    """

    style: PlanStyle = PlanStyle.OUTER_JOIN
    reduce: bool = True
    keep: tuple = ()
    budget_ms: float = None
    workers: int = None
    retry: object = None
    faults: object = None
    obs: object = None
    replicas: object = None
    hedge_ms: float = None
    max_concurrent: object = None
    engine: str = None
    batch_size: int = None
    #: Where generated SQL is executed: None defers to the connection's
    #: backend (usually pure simulation), ``"sqlite"``/``"simulated"`` or a
    #: :class:`~repro.relational.backends.Backend` instance select one for
    #: this execution.  A real backend never changes results, simulated
    #: timings, or cache keys — it adds measured ``backend_wall_ms`` to the
    #: reports (see :mod:`repro.relational.backends`).  Backend instances
    #: hash by identity, keeping the options bundle hashable.
    backend: object = None
    node_cache_entries: int = None
    retention_bytes: float = None
    #: Optional :class:`RequestContext` naming the client request this
    #: execution serves; errors raised anywhere under the dispatch carry
    #: its tenant/request id.  Purely diagnostic — never affects results,
    #: timings, or cache keys.
    request: object = None
    #: Durability knobs, consumed by :class:`~repro.session.Session` (and
    #: ``repro serve --wal``): ``wal_path`` is a directory for the
    #: :class:`~repro.relational.wal.WriteAheadLog` (snapshot + log) the
    #: session's database commits mutations through — on a restart the
    #: same path recovers the pre-crash state; ``checkpoint_every``
    #: snapshots + truncates after every N commit records (None never
    #: auto-checkpoints).  Like ``obs``/``request``, these never affect
    #: results, simulated timings, or cache keys — the serving layer
    #: strips them from its canonical option keys.
    wal_path: object = None
    checkpoint_every: int = None

    def __post_init__(self):
        object.__setattr__(self, "keep", tuple(self.keep))

    def replace(self, **overrides):
        """A copy with the given fields replaced."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(overrides)
        return ExecutionOptions(**values)


_FIELDS = frozenset(f.name for f in fields(ExecutionOptions))


def resolve_options(options=None, defaults=None, **explicit):
    """Merge explicit keywords over ``options`` over per-method defaults.

    ``explicit`` values equal to :data:`UNSET` are dropped; remaining
    precedence is explicit keyword > ``options`` field > ``defaults`` entry
    > :class:`ExecutionOptions` field default.  Returns a resolved
    :class:`ExecutionOptions`.
    """
    if options is None:
        options = ExecutionOptions(**(defaults or {}))
    elif defaults:
        # Per-method defaults apply only to fields the caller's options
        # object was *not* asked about... there is no way to tell a field
        # left at its default from one set explicitly on a frozen
        # dataclass, so an options object is taken at face value: all its
        # fields apply.  This is the documented contract.
        pass
    unknown = set(explicit) - _FIELDS
    if unknown:
        raise TypeError(f"unknown execution option(s): {sorted(unknown)}")
    overrides = {
        name: value for name, value in explicit.items()
        if value is not UNSET
    }
    if overrides:
        options = options.replace(**overrides)
    return options
