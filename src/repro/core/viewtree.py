"""View-tree construction (Sec. 3.1).

An RXL view query is represented by a *view tree*: a global XML template
whose every node carries

* a **Skolem function** that uniquely identifies the template node (user
  supplied via ``ID=F(...)`` or introduced automatically, in which case its
  arguments are the keys of all in-scope tuple variables plus the variables
  contained in the element),
* a **Skolem-function index** like ``S1.4.2`` — the root is ``S1`` and the
  i-th child of a node appends ``.i`` — assigned in breadth-first order,
* **Skolem-term variables** with indices ``(p, q)``: ``p`` is the level of
  the node closest to the root that has the variable in its Skolem term,
  ``q`` a per-level ordinal making ``(p, q)`` unique, and
* one (or, with user Skolem functions that fuse elements, several)
  non-recursive **datalog rule(s)** whose body is the conjunction of all
  ``from`` and ``where`` clauses in scope.

Variables related by equality join conditions are unified (the paper writes
``$ps.suppkey`` and ``$s.suppkey`` as the single column ``suppkey``); the
unifier is a union-find over ``alias.field`` pairs.
"""

from dataclasses import dataclass

from repro.common.errors import PlanError, RxlScopeError
from repro.relational.dependencies import FunctionalDependency, attribute_closure
from repro.rxl.ast import RxlBlock, RxlElement, TextExpr, TextLiteral
from repro.rxl.validate import validate_rxl


@dataclass(frozen=True)
class Stv:
    """A Skolem-term variable with its ``(p, q)`` index.

    The SQL-visible column name combines the index and the original field
    name for readability: ``v1_1_suppkey`` is the paper's ``suppkey(1,1)``.
    """

    level: int
    ordinal: int
    field_hint: str
    sql_type: object
    source: tuple  # (table, column) of the representative occurrence

    @property
    def name(self):
        return f"v{self.level}_{self.ordinal}_{self.field_hint}"

    def __repr__(self):
        return f"{self.field_hint}({self.level},{self.ordinal})"


@dataclass(frozen=True)
class NodeRule:
    """One datalog rule: ``Skolem(args) :- atoms, conditions``.

    ``atoms`` are ``(table_name, alias)`` pairs; ``equalities`` are
    ``(alias.field, alias.field)`` join conditions; ``filters`` are
    ``(alias.field, op, literal)``.  ``head`` maps each argument
    :class:`Stv` to the representative ``alias.field`` occurrence used when
    projecting.
    """

    atoms: tuple
    equalities: tuple
    filters: tuple
    head: tuple  # of (Stv, "alias.field")

    def head_stvs(self):
        return tuple(stv for stv, _ in self.head)

    def atom_key(self):
        """Canonical identity of the body (used for rule equivalence)."""
        return (
            frozenset(self.atoms),
            frozenset(frozenset(e) for e in self.equalities),
            frozenset(self.filters),
        )


class ViewTreeNode:
    """One node of the view tree — one element template."""

    def __init__(self, tag, skolem_name=None):
        self.tag = tag
        self.skolem_name = skolem_name  # explicit user Skolem name, if any
        self.index = None               # tuple of ints, e.g. (1, 4, 2)
        self.args = ()                  # tuple of Stv (the Skolem term)
        self.key_args = ()              # subset of args: scope-key classes
        self.contents = []              # Stv | str (display order)
        self.rules = []                 # list of NodeRule
        self.parent = None
        self.children = []
        self.label = None               # '1' | '?' | '+' | '*' on edge to parent

    # -- identity and presentation -------------------------------------------

    @property
    def sfi(self):
        """The Skolem-function index string, e.g. ``S1.4.2``."""
        return "S" + ".".join(str(i) for i in self.index)

    @property
    def level(self):
        return len(self.index)

    @property
    def rule(self):
        if len(self.rules) != 1:
            raise PlanError(
                f"node {self.sfi} has {len(self.rules)} rules; expected one"
            )
        return self.rules[0]

    def is_ancestor_of(self, other):
        return (
            len(self.index) < len(other.index)
            and other.index[: len(self.index)] == self.index
        )

    def descendants(self):
        for child in self.children:
            yield child
            yield from child.descendants()

    def __repr__(self):
        return f"ViewTreeNode({self.sfi} <{self.tag}>)"


class ViewTree:
    """The complete view tree plus global variable bookkeeping."""

    def __init__(self, root, nodes_by_index, stvs):
        self.root = root
        self._by_index = nodes_by_index
        self.stvs = stvs  # all Stv, ordered by (level, ordinal)

    def node(self, index):
        try:
            return self._by_index[tuple(index)]
        except KeyError:
            raise PlanError(f"no view-tree node with index {index}") from None

    @property
    def nodes(self):
        """All nodes in breadth-first (index) order."""
        return tuple(self._by_index[i] for i in sorted(self._by_index))

    @property
    def edges(self):
        """All (parent, child) pairs, in child-index order."""
        return tuple(
            (node.parent, node) for node in self.nodes if node.parent is not None
        )

    def stvs_at_level(self, level):
        return tuple(v for v in self.stvs if v.level == level)

    def max_depth(self):
        return max(node.level for node in self.nodes)

    def render(self, show_args=True):
        """Draw the view tree as text, Fig. 6-style: one node per line with
        its edge label, tag, and (optionally) Skolem-term arguments."""
        lines = []

        def draw(node, prefix, is_last):
            connector = "" if node.parent is None else (
                "└─" if is_last else "├─"
            )
            label = f"({node.label}) " if node.label else ""
            args = ""
            if show_args:
                args = "(" + ", ".join(repr(a) for a in node.args) + ")"
            lines.append(
                f"{prefix}{connector}{label}{node.sfi} <{node.tag}> {args}"
            )
            child_prefix = prefix if node.parent is None else (
                prefix + ("  " if is_last else "│ ")
            )
            for i, child in enumerate(node.children):
                draw(child, child_prefix, i == len(node.children) - 1)

        draw(self.root, "", True)
        return "\n".join(lines)

    def __repr__(self):
        return f"ViewTree({len(self.nodes)} nodes, {len(self.edges)} edges)"


def build_view_tree(query, schema, validate=True, simplify_args=False):
    """Build the view tree for a parsed RXL query.

    ``simplify_args`` applies the paper's Sec. 3.1 simplification: Skolem
    arguments functionally determined by the remaining arguments (via
    declared keys) are dropped — e.g. ``S1.1(suppkey, nationkey, name)``
    becomes ``S1.1(suppkey, name)`` when ``name`` is unique in ``Nation``.
    Off by default: it changes relation schemas, never results.
    """
    if validate:
        validate_rxl(query, schema)
    builder = _Builder(schema, simplify_args=simplify_args)
    return builder.build(query)


# ---------------------------------------------------------------------------
# Builder internals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Scope:
    """The accumulated from/where context along a block chain."""

    atoms: tuple       # (table, alias)
    equalities: tuple  # (alias.field, alias.field)
    filters: tuple     # (alias.field, op, value)
    var_alias: dict    # RXL var name -> alias (immutable treated)


class _UnionFind:
    def __init__(self):
        self.parent = {}

    def find(self, item):
        parent = self.parent.setdefault(item, item)
        if parent != item:
            root = self.find(parent)
            self.parent[item] = root
            return root
        return item

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


class _Builder:
    def __init__(self, schema, simplify_args=False):
        self.schema = schema
        self.simplify_args = simplify_args
        self.alias_of = {}
        self.alias_table = {}      # alias -> table name
        self.unifier = _UnionFind()
        self.stv_of_class = {}     # class representative -> Stv
        self.next_ordinal = {}     # level -> next q
        self.explicit_nodes = {}   # skolem name -> ViewTreeNode
        self.node_scope = {}       # id(node) -> _Scope
        self.node_contents_refs = {}  # id(node) -> list of Stv-pending refs

    # -- entry ---------------------------------------------------------------

    def build(self, query):
        if len(query.construct) != 1:
            raise PlanError(
                "the top-level construct clause must have exactly one root "
                f"element (found {len(query.construct)})"
            )
        scope = self._extend_scope(
            _Scope((), (), (), {}), query
        )
        root = self._build_element(query.construct[0], scope)
        self._assign_indices(root)
        nodes_by_index = {node.index: node for node in self._walk(root)}
        stvs = self._assign_variables(root)
        self._build_rules(root)
        tree = ViewTree(root, nodes_by_index, stvs)
        return tree

    def _walk(self, node):
        yield node
        for child in node.children:
            yield from self._walk(child)

    # -- scope handling -------------------------------------------------------

    def _extend_scope(self, scope, query):
        atoms = list(scope.atoms)
        var_alias = dict(scope.var_alias)
        for decl in query.froms:
            alias = self._fresh_alias(decl.var)
            var_alias[decl.var] = alias
            self.alias_table[alias] = decl.table
            atoms.append((decl.table, alias))
        equalities = list(scope.equalities)
        filters = list(scope.filters)
        for cond in query.conditions:
            left = self._resolve_operand(cond.left, var_alias)
            right = self._resolve_operand(cond.right, var_alias)
            left_is_col = isinstance(left, str)
            right_is_col = isinstance(right, str)
            if cond.op == "=" and left_is_col and right_is_col:
                equalities.append((left, right))
                self.unifier.union(left, right)
            elif left_is_col and not right_is_col:
                filters.append((left, cond.op, right))
            elif right_is_col and not left_is_col:
                filters.append((right, _flip(cond.op), left))
            else:
                # column-to-column non-equality: keep as a filter pair by
                # encoding the right column reference.
                filters.append((left, cond.op, ("col", right)))
        return _Scope(tuple(atoms), tuple(equalities), tuple(filters), var_alias)

    def _fresh_alias(self, var):
        count = self.alias_of.get(var, 0)
        self.alias_of[var] = count + 1
        return var if count == 0 else f"{var}_{count + 1}"

    def _resolve_operand(self, operand, var_alias):
        from repro.rxl.ast import VarField, LiteralValue

        if isinstance(operand, VarField):
            alias = var_alias.get(operand.var)
            if alias is None:
                raise RxlScopeError(f"undeclared tuple variable ${operand.var}")
            return f"{alias}.{operand.field}"
        if isinstance(operand, LiteralValue):
            return operand  # not a string => literal
        raise PlanError(f"unsupported operand {operand!r}")

    # -- template construction --------------------------------------------------

    def _build_element(self, element, scope):
        node = self._node_for(element, scope)
        self.node_scope.setdefault(id(node), scope)
        refs = self.node_contents_refs.setdefault(id(node), [])
        for content in element.contents:
            if isinstance(content, TextExpr):
                alias = scope.var_alias[content.ref.var]
                refs.append(("expr", f"{alias}.{content.ref.field}"))
            elif isinstance(content, TextLiteral):
                refs.append(("text", content.text))
            elif isinstance(content, RxlElement):
                child = self._build_element(content, scope)
                self._attach(node, child)
            elif isinstance(content, RxlBlock):
                sub_scope = self._extend_scope(scope, content.query)
                for sub_element in content.query.construct:
                    child = self._build_element(sub_element, sub_scope)
                    self._attach(node, child)
        return node

    def _node_for(self, element, scope):
        if element.skolem is not None:
            existing = self.explicit_nodes.get(element.skolem.name)
            if existing is not None:
                if existing.tag != element.tag:
                    raise PlanError(
                        f"Skolem function {element.skolem.name} used for both "
                        f"<{existing.tag}> and <{element.tag}>"
                    )
                # Fused occurrence: a second rule will be added for it.
                self._record_explicit_args(existing, element, scope)
                return existing
            node = ViewTreeNode(element.tag, skolem_name=element.skolem.name)
            self.explicit_nodes[element.skolem.name] = node
            self._record_explicit_args(node, element, scope)
            return node
        return ViewTreeNode(element.tag)

    def _record_explicit_args(self, node, element, scope):
        refs = []
        for arg in element.skolem.args:
            alias = scope.var_alias[arg.var]
            refs.append(f"{alias}.{arg.field}")
        occurrences = getattr(node, "_explicit_arg_refs", [])
        if occurrences:
            # Fused occurrence: the i-th argument of every occurrence is
            # the *same* Skolem-term variable — unify them positionally so
            # one column carries the term's argument in every rule.
            first_refs, _ = occurrences[0]
            if len(first_refs) != len(refs):
                raise PlanError(
                    f"Skolem function {element.skolem.name}: occurrences "
                    "disagree on argument count"
                )
            for a, b in zip(first_refs, refs):
                self.unifier.union(a, b)
        occurrences.append((tuple(refs), scope))
        node._explicit_arg_refs = occurrences

    def _attach(self, parent, child):
        if child.parent is not None:
            if child.parent is not parent:
                raise PlanError(
                    f"Skolem function {child.skolem_name} fuses elements with "
                    "different parents; this is not a tree"
                )
            return  # fused occurrence already attached
        child.parent = parent
        parent.children.append(child)

    # -- index and variable assignment ------------------------------------------

    def _assign_indices(self, root):
        root.index = (1,)
        queue = [root]
        while queue:
            node = queue.pop(0)
            for position, child in enumerate(node.children, start=1):
                child.index = node.index + (position,)
                queue.append(child)

    def _assign_variables(self, root):
        """Assign Skolem-term variables level by level (breadth first), so
        each variable's ``p`` is the level of its closest-to-root node."""
        ordered = sorted(self._walk(root), key=lambda n: (n.level, n.index))
        for node in ordered:
            scopes = self._scopes_of(node)
            arg_refs = self._arg_refs(node, scopes)
            entries = []  # (class representative, sample ref, is_key)
            seen = set()
            for ref, is_key in arg_refs:
                rep = self.unifier.find(ref)
                if rep in seen:
                    continue
                seen.add(rep)
                entries.append((rep, ref, is_key))
            if self.simplify_args:
                entries = self._simplify_entries(node, scopes[0], entries)
            args = []
            key_args = []
            for rep, ref, is_key in entries:
                stv = self._stv_for(rep, node.level, ref)
                args.append(stv)
                if is_key:
                    key_args.append(stv)
            node.args = tuple(sorted(args, key=lambda v: (v.level, v.ordinal)))
            node.key_args = tuple(
                sorted(key_args, key=lambda v: (v.level, v.ordinal))
            )
            node.contents = self._node_contents(node)
        stvs = sorted(
            self.stv_of_class.values(), key=lambda v: (v.level, v.ordinal)
        )
        return tuple(stvs)

    def _simplify_entries(self, node, scope, entries):
        """The paper's Sec. 3.1 simplification, applied before variable
        indices are assigned: drop a key argument *introduced at this
        node's own level* of a *leaf* node when it is functionally
        determined by the remaining arguments (via declared keys/unique
        sets).  Arguments inherited from ancestors are structural — they
        position the element in the document — and are never dropped;
        neither are displayed variables; and internal nodes keep their own
        keys because descendants reference them (the paper does the same:
        Fig. 11 keeps partkey in S1.4's term, Fig. 4 drops it from the
        leaf part node)."""
        if node.children:
            return entries
        fds = self._scope_fds(scope)
        kept = list(entries)
        for entry in list(kept):
            rep, _, is_key = entry
            if not is_key:
                continue
            existing = self.stv_of_class.get(rep)
            if existing is not None and existing.level < node.level:
                continue  # inherited ancestor key
            rest = [r for (r, _, _) in kept if r != rep]
            if rep in attribute_closure(rest, fds):
                kept.remove(entry)
        return kept

    def _scopes_of(self, node):
        if hasattr(node, "_explicit_arg_refs"):
            return [scope for _, scope in node._explicit_arg_refs]
        return [self.node_scope[id(node)]]

    def _arg_refs(self, node, scopes):
        """The (alias.field, is_key) pairs forming the Skolem term."""
        if hasattr(node, "_explicit_arg_refs"):
            refs = []
            for arg_refs, _ in node._explicit_arg_refs:
                for ref in arg_refs:
                    refs.append((ref, True))
            # Displayed variables still need a column in the relation even
            # when the user's Skolem term omits them.
            for kind, value in self.node_contents_refs.get(id(node), ()):
                if kind == "expr":
                    refs.append((value, False))
            return refs
        scope = scopes[0]
        refs = []
        for table_name, alias in scope.atoms:
            table = self.schema.table(table_name)
            for key_col in table.key:
                refs.append((f"{alias}.{key_col}", True))
        for kind, value in self.node_contents_refs.get(id(node), ()):
            if kind == "expr":
                refs.append((value, False))
        return refs

    def _stv_for(self, class_rep, level, sample_ref):
        stv = self.stv_of_class.get(class_rep)
        if stv is not None:
            return stv
        ordinal = self.next_ordinal.get(level, 1)
        self.next_ordinal[level] = ordinal + 1
        alias, field = sample_ref.split(".", 1)
        table = self.schema.table(self.alias_table[alias])
        column = table.column(field)
        stv = Stv(
            level=level,
            ordinal=ordinal,
            field_hint=field,
            sql_type=column.sql_type,
            source=(table.name, field),
        )
        self.stv_of_class[class_rep] = stv
        return stv

    def _scope_fds(self, scope):
        """FDs over unified column classes derivable from keys and declared
        unique sets of the atoms in scope."""
        fds = []
        for table_name, alias in scope.atoms:
            table = self.schema.table(table_name)
            all_cols = [
                self.unifier.find(f"{alias}.{c.name}") for c in table.columns
            ]
            key_sets = [table.key]
            key_sets.extend(getattr(table, "unique_sets", ()))
            for key_set in key_sets:
                lhs = [self.unifier.find(f"{alias}.{k}") for k in key_set]
                fds.append(FunctionalDependency.of(lhs, all_cols))
        return fds

    def _node_contents(self, node):
        contents = []
        fused = hasattr(node, "_explicit_arg_refs")
        seen = set()
        for kind, value in self.node_contents_refs.get(id(node), ()):
            if kind == "expr":
                rep = self.unifier.find(value)
                stv = self.stv_of_class[rep]
                # Fused occurrences contribute the same (unified) display
                # variable once each; emit it a single time.
                if fused and stv in seen:
                    continue
                seen.add(stv)
                contents.append(stv)
            else:
                contents.append(value)
        return contents

    # -- rules -------------------------------------------------------------------

    def _build_rules(self, root):
        for node in self._walk(root):
            node.rules = []
            for scope in self._scopes_of(node):
                head = []
                for stv in node.args:
                    ref = self._representative_ref(stv, scope)
                    head.append((stv, ref))
                node.rules.append(
                    NodeRule(
                        atoms=tuple(scope.atoms),
                        equalities=tuple(scope.equalities),
                        filters=tuple(scope.filters),
                        head=tuple(head),
                    )
                )

    def _representative_ref(self, stv, scope):
        """Pick an in-scope alias.field occurrence of the variable class."""
        for rep, known in self.stv_of_class.items():
            if known is stv:
                class_rep = rep
                break
        else:
            raise PlanError(f"no class for variable {stv}")
        scope_aliases = {alias for _, alias in scope.atoms}
        # Prefer the class representative if in scope, else any member.
        candidates = [class_rep] + [
            member
            for member in self.unifier.parent
            if self.unifier.find(member) == class_rep
        ]
        for ref in candidates:
            alias = ref.split(".", 1)[0]
            if alias in scope_aliases:
                return ref
        raise PlanError(
            f"variable {stv} is not available in the scope of this rule"
        )


def _flip(op):
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}[op]
