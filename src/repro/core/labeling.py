"""Edge multiplicity labeling (Sec. 3.5).

For an edge between parent ``p`` (rule ``F(x1..xm) :- Qp``) and child ``c``
(rule ``G(x1..xm,..,xn) :- Qc``), the label is determined by:

* **C1** — there is a functional dependency
  ``Rc : x1..xm -> xm+1..xn`` (at most one child per parent instance), and
* **C2** — there is an inclusion dependency
  ``Rp[x1..xm] ⊆ Rc[x1..xm]`` (at least one child per parent instance),

giving ``1`` (C1∧C2), ``?`` (C1 only), ``+`` (C2 only), ``*`` (neither).

Exactly like SilkRoute, the C1 check ignores inclusion dependencies (the
combined implication problem is undecidable) and decides FD implication via
attribute closure over the dependencies derivable from declared keys and
join equalities — linear time.  The C2 check is a structural foreign-key
argument: the child body must extend the parent body only by atoms reached
through enforced, non-null foreign keys (every parent tuple then joins to
at least one child tuple), with no extra filters.
"""

from repro.relational.dependencies import FunctionalDependency, attribute_closure


def label_view_tree(tree, schema, assume_fk_enforced=True):
    """Label every non-root node's edge; returns {node_sfi: label}."""
    labels = {}
    for parent, child in tree.edges:
        child.label = edge_label(parent, child, schema, assume_fk_enforced)
        labels[child.sfi] = child.label
    return labels


def edge_label(parent, child, schema, assume_fk_enforced=True):
    """Compute the label of one edge."""
    if len(parent.rules) != 1 or len(child.rules) != 1:
        # Fused (multi-rule) nodes: be conservative.
        return "*"
    rule_p = parent.rules[0]
    rule_c = child.rules[0]
    c1 = _check_c1(rule_p, rule_c, schema)
    c2 = _check_c2(rule_p, rule_c, schema, assume_fk_enforced)
    if c1 and c2:
        return "1"
    if c1:
        return "?"
    if c2:
        return "+"
    return "*"


# ---------------------------------------------------------------------------
# C1: functional dependency via attribute closure
# ---------------------------------------------------------------------------


def _check_c1(rule_p, rule_c, schema):
    fds = body_fds(rule_c, schema)
    parent_refs = [ref for _, ref in rule_p.head]
    child_refs = [ref for _, ref in rule_c.head]
    closure = attribute_closure(parent_refs, fds)
    return all(ref in closure for ref in child_refs)


def body_fds(rule, schema):
    """FDs over ``alias.field`` occurrences derivable from the rule body:
    per-atom key (and declared unique-set) dependencies, plus the join
    equalities as two-way dependencies."""
    fds = []
    for table_name, alias in rule.atoms:
        table = schema.table(table_name)
        all_refs = [f"{alias}.{c.name}" for c in table.columns]
        key_sets = [table.key]
        key_sets.extend(getattr(table, "unique_sets", ()) or ())
        for key_set in key_sets:
            lhs = [f"{alias}.{k}" for k in key_set]
            fds.append(FunctionalDependency.of(lhs, all_refs))
    for left, right in rule.equalities:
        fds.append(FunctionalDependency.of([left], [right]))
        fds.append(FunctionalDependency.of([right], [left]))
    # Filters pin columns to constants: a column compared equal to a literal
    # is functionally determined by the empty set.
    for ref, op, _value in rule.filters:
        if op == "=":
            fds.append(FunctionalDependency.of([], [ref]))
    return fds


# ---------------------------------------------------------------------------
# C2: inclusion dependency via foreign-key reachability
# ---------------------------------------------------------------------------


def _check_c2(rule_p, rule_c, schema, assume_fk_enforced):
    parent_atoms = set(rule_p.atoms)
    child_atoms = set(rule_c.atoms)
    if not parent_atoms <= child_atoms:
        return False
    # Extra filters in the child can eliminate parent tuples.
    if set(rule_c.filters) - set(rule_p.filters):
        return False

    parent_eqs = {frozenset(e) for e in rule_p.equalities}
    child_eqs = {frozenset(e) for e in rule_c.equalities}
    allowed_eqs = set(parent_eqs)

    included = set(parent_atoms)
    extra = set(child_atoms) - included
    progress = True
    while extra and progress:
        progress = False
        for atom in list(extra):
            fk_eqs = _fk_join_equalities(
                atom, included, child_eqs, schema, assume_fk_enforced
            )
            if fk_eqs is not None:
                included.add(atom)
                extra.discard(atom)
                allowed_eqs |= fk_eqs
                progress = True
    if extra:
        return False
    # Any remaining child equality beyond the parent's and the FK joins is a
    # filter on parent tuples.
    return child_eqs <= allowed_eqs


def _fk_join_equalities(atom, included, child_eqs, schema, assume_fk_enforced):
    """If ``atom`` is reached from an included atom via an enforced non-null
    foreign key whose column pairing appears among the child equalities,
    return those equalities (as frozensets); else None."""
    atom_table, atom_alias = atom
    for base_table, base_alias in included:
        for fk in schema.foreign_keys_from(base_table):
            if fk.ref_table != atom_table:
                continue
            if not fk.not_null or not assume_fk_enforced:
                continue
            pairing = {
                frozenset(
                    (f"{base_alias}.{col}", f"{atom_alias}.{ref_col}")
                )
                for col, ref_col in zip(fk.columns, fk.ref_columns)
            }
            if pairing <= child_eqs:
                return pairing
    return None
