"""View-tree partitioning (Sec. 3.2).

A *plan* is a spanning forest of the view tree: any subset of the edge set.
Each tree of the forest (a :class:`Subtree`) becomes one SQL query / tuple
stream, so a view tree with ``|E|`` edges has exactly ``2^|E|`` plans,
ranging from the *unified* plan (all edges kept — one SQL query) to the
*fully partitioned* plan (no edges kept — one SQL query per node).
"""

import itertools

from repro.common.errors import PlanError


class Partition:
    """A subset of view-tree edges, identified by child index."""

    __slots__ = ("kept",)

    def __init__(self, kept_child_indices):
        self.kept = frozenset(tuple(i) for i in kept_child_indices)

    def keeps(self, child_node):
        return child_node.index in self.kept

    def __eq__(self, other):
        return isinstance(other, Partition) and self.kept == other.kept

    def __hash__(self):
        return hash(self.kept)

    def __len__(self):
        return len(self.kept)

    def __repr__(self):
        kept = sorted(self.kept)
        return "Partition(" + ", ".join("S" + ".".join(map(str, i)) for i in kept) + ")"


class Subtree:
    """One connected component of a partitioned view tree."""

    def __init__(self, tree, root, nodes):
        self.tree = tree
        self.root = root
        self.nodes = tuple(sorted(nodes, key=lambda n: n.index))
        self._node_set = set(self.nodes)

    def contains(self, node):
        return node in self._node_set

    def kept_children(self, node):
        """Children of ``node`` that belong to this subtree."""
        return [c for c in node.children if c in self._node_set]

    def max_index_length(self):
        """``SFImax``: the longest Skolem-function index in the subtree,
        which determines the ``L1..Lmax`` columns of its relation."""
        return max(len(n.index) for n in self.nodes)

    def __repr__(self):
        return f"Subtree({self.root.sfi}: {len(self.nodes)} nodes)"


def unified_partition(tree):
    """Keep every edge: one SQL query for the whole view (Fig. 5(a))."""
    return Partition(child.index for _, child in tree.edges)


def fully_partitioned(tree):
    """Cut every edge: one SQL query per view-tree node (Fig. 5(d))."""
    return Partition(())


def enumerate_partitions(tree):
    """All ``2^|E|`` partitions, from fully partitioned to unified."""
    child_indices = [child.index for _, child in tree.edges]
    for r in range(len(child_indices) + 1):
        for combo in itertools.combinations(child_indices, r):
            yield Partition(combo)


def partition_subtrees(tree, partition):
    """Split the view tree into its partition's connected components,
    ordered by root index (document order)."""
    for index in partition.kept:
        tree.node(index)  # validates membership
        if len(index) < 2:
            raise PlanError("the root has no incoming edge to keep")
    components = []
    assigned = {}
    for node in tree.nodes:  # breadth-first: parents before children
        if node.parent is not None and partition.keeps(node):
            component = assigned[node.parent.index]
            component.append(node)
            assigned[node.index] = component
        else:
            component = [node]
            components.append(component)
            assigned[node.index] = component
    return [Subtree(tree, nodes[0], nodes) for nodes in components]
