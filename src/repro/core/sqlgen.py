"""SQL generation for partitioned view trees (Sec. 3.4).

For each subtree of a partition, one query is generated whose result is the
subtree's *partitioned relation*: schema ``L1..Lmax`` (Skolem-function-index
tags) plus the Skolem-term variables of the subtree, one tuple per path from
the subtree root to a terminal node instance, sorted by the interleaved key
``L1, V(1,*), L2, V(2,*), ...`` with NULLS FIRST.

Two generation styles are implemented (the paper's Sec. 3.4 distinction):

* **outer-join** (SilkRoute's): ``R ⟕ (S ∪ T)`` — each node's base query is
  left-outer-joined with the outer union of its children's recursively
  generated queries, using the tagged ON disjunction
  ``(L2=1 AND ...) OR (L2=2 AND ...)``.  Bare parent tuples appear only when
  a parent instance matches no child at all.
* **outer-union** ([9]'s): ``(R ⟕ S) ∪ (R ⟕ T)`` — one branch per node,
  each a chain of joins along the root-to-node path (inner joins for
  ``1``/``+`` edges, outer joins otherwise), combined by outer union.  This
  produces more (but effectively narrower) tuples.

Each node's ``L`` tag constant is embedded in that node's own base query, so
an unmatched outer join leaves it NULL and the deepest non-NULL ``L`` column
always identifies the tuple's terminal node.
"""

import enum
from dataclasses import dataclass, field

from repro.common.errors import PlanError
from repro.relational.algebra import (
    And,
    ColumnRef,
    Comparison,
    ConstantColumn,
    Distinct,
    Filter,
    InnerJoin,
    JoinBranch,
    LeftOuterJoin,
    Literal,
    OuterUnion,
    Project,
    ProjectItem,
    Scan,
    Sort,
)
from repro.obs.tracer import NULL_TRACER
from repro.relational.sqltext import render_sql, render_sql_with
from repro.relational.types import SqlType
from repro.core.partition import partition_subtrees
from repro.core.reduction import reduce_subtree

_JOIN_PREFIX = "jk_"
_BRANCH_TAG = "Btag"


class PlanStyle(enum.Enum):
    """How combined queries are phrased (Sec. 3.4)."""

    OUTER_JOIN = "outer-join"
    OUTER_UNION = "outer-union"


@dataclass
class StreamSpec:
    """Everything needed to execute and decode one subtree's tuple stream."""

    unit_tree: object            # core.reduction.ReducedSubtree
    plan: object                 # algebra operator, Sort at the top
    sort_keys: tuple
    l_levels: tuple              # the levels j for which an Lj column exists
    stvs: tuple                  # Stv columns, in schema order
    unit_paths: dict             # terminal rep-index -> [PlanUnit] root..terminal
    compact: bool                # transfer rows in compact (union) format
    label: str
    style: PlanStyle

    _sql: str = field(default=None, repr=False)

    @property
    def sql(self):
        """The SQL text actually sent to the RDBMS (rendered lazily).

        Specs are shared across threads by the concurrent dispatcher; the
        lazy render is idempotent, so the benign race at worst renders the
        text twice (the dispatcher pre-renders before fanning out anyway).
        """
        if self._sql is None:
            self._sql = render_sql(self.plan)
        return self._sql

    @property
    def sql_with(self):
        """The same query phrased with the SQL ``WITH`` clause for shared
        node queries (footnote 1) — for targets whose source description
        sets ``supports_with``."""
        return render_sql_with(self.plan)

    @property
    def column_names(self):
        return tuple(c.name for c in self.plan.columns())

    def uses_outer_join(self):
        from repro.relational.algebra import count_operators

        return count_operators(self.plan, LeftOuterJoin) > 0

    def uses_union(self):
        from repro.relational.algebra import count_operators

        return count_operators(self.plan, OuterUnion) > 0


class SqlGenerator:
    """Generates one :class:`StreamSpec` per subtree of a partition."""

    def __init__(self, tree, schema, style=PlanStyle.OUTER_JOIN,
                 reduce=False, keep=(), tracer=None):
        self.tree = tree
        self.schema = schema
        self.style = style
        self.reduce = reduce
        self.keep = tuple(keep)
        #: Observability tracer; ``reduce`` work is recorded as a span per
        #: subtree actually reduced (cache misses only).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # One generator serves many partitions (a sweep visits 2^|E| of
        # them) but the same subtree — the same node set — recurs across
        # most, so specs are memoized by node-index set.  StreamSpecs are
        # immutable after construction and safe to share.
        self._stream_cache = {}

    def streams_for_partition(self, partition):
        """The partitioned relations' queries, in document order."""
        subtrees = partition_subtrees(self.tree, partition)
        return [self.stream_for_subtree(s) for s in subtrees]

    def stream_for_subtree(self, subtree):
        key = tuple(node.index for node in subtree.nodes)
        spec = self._stream_cache.get(key)
        if spec is None:
            if self.reduce and self.tracer.enabled:
                with self.tracer.span("reduce", nodes=len(subtree.nodes)):
                    unit_tree = reduce_subtree(
                        subtree, reduce=self.reduce, keep=self.keep
                    )
            else:
                unit_tree = reduce_subtree(
                    subtree, reduce=self.reduce, keep=self.keep
                )
            spec = self._build_stream(unit_tree)
            self._stream_cache[key] = spec
        return spec

    # -- stream assembly -------------------------------------------------------

    def _build_stream(self, unit_tree):
        root = unit_tree.root
        if self.style is PlanStyle.OUTER_JOIN:
            body = self._outer_join_plan(root)
        else:
            body = self._outer_union_plan(root)

        l_levels, stvs = self._subtree_schema(root)
        body = self._canonicalize(body, root, l_levels, stvs)
        sort_keys = self._sort_keys(l_levels, stvs)
        plan = Sort(body, sort_keys)

        unit_paths = {}
        self._collect_paths(root, [], unit_paths)
        return StreamSpec(
            unit_tree=unit_tree,
            plan=plan,
            sort_keys=tuple(sort_keys),
            l_levels=tuple(l_levels),
            stvs=tuple(stvs),
            unit_paths=unit_paths,
            compact=self.style is PlanStyle.OUTER_UNION,
            label=root.skolem_name(),
            style=self.style,
        )

    def _collect_paths(self, unit, prefix, out):
        path = prefix + [unit]
        out[unit.index] = path
        for child in unit.children:
            self._collect_paths(child, path, out)

    def _subtree_schema(self, root):
        max_len = root.max_index_length()
        l_levels = list(range(1, max_len + 1))
        stvs = []
        seen = set()
        for unit in root.walk():
            for stv in unit.args:
                if stv not in seen:
                    seen.add(stv)
                    stvs.append(stv)
        stvs.sort(key=lambda v: (v.level, v.ordinal))
        return l_levels, stvs

    def _sort_keys(self, l_levels, stvs):
        """Interleaved ``L1, V(1,*), L2, V(2,*), ...`` (Sec. 3.2)."""
        keys = []
        max_level = max(l_levels) if l_levels else 0
        for level in range(1, max_level + 1):
            if level in l_levels:
                keys.append(_l_name(level))
            keys.extend(v.name for v in stvs if v.level == level)
        return keys

    def _canonicalize(self, body, root, l_levels, stvs):
        """Project to the canonical column order, adding the constant upper
        L tags shared by every tuple of the subtree (the subtree root's
        index prefix) and NULL columns for anything the body lacks."""
        present = set(c.name for c in body.columns())
        items = []
        root_prefix = {
            level: root.index[level - 1] for level in range(1, root.level + 1)
        }
        for level in l_levels:
            name = _l_name(level)
            if name in present:
                items.append(ProjectItem(ColumnRef(name), name))
            elif level < root.level:
                items.append(ConstantColumn(name, root_prefix[level], SqlType.INTEGER))
            else:
                items.append(ConstantColumn(name, None, SqlType.INTEGER))
        for stv in stvs:
            if stv.name in present:
                items.append(ProjectItem(ColumnRef(stv.name), stv.name))
            else:
                items.append(ConstantColumn(stv.name, None, stv.sql_type))
        return Project(body, items)

    # -- node (unit) base queries ------------------------------------------------

    def _node_query(self, unit):
        """The unit's datalog rule(s) as algebra.  A fused node (several
        rules from one user Skolem function) becomes the outer union of its
        per-rule queries with set semantics."""
        if len(unit.rules) > 1:
            branches = [self._rule_query(unit, rule) for rule in unit.rules]
            return OuterUnion(branches, distinct=True)
        return self._rule_query(unit, unit.rule)

    def _rule_query(self, unit, rule):
        """One rule as joins of the body atoms, filters, and a DISTINCT
        projection onto the Skolem-term arguments."""
        if not rule.atoms:
            raise PlanError(f"unit {unit.skolem_name()} has an empty body")
        return rule_to_algebra(rule, self.schema)

    # -- outer-join style (SilkRoute's generator) -----------------------------------

    def _outer_join_plan(self, unit, parent_level=None):
        """``base ⟕ (child1 ∪ child2 ∪ ...)`` with a tagged ON disjunction;
        the unit's L tags are constants on every output row.

        A unit emits the L constants for every level between its parent
        unit's representative and its own index (``parent_level+1`` ..
        ``unit.level``): when reduction merges a deeper member into the
        parent, the child unit hangs off that member and must bridge the
        intermediate levels itself, or the decoder would see a NULL gap in
        the L path and stop early."""
        base = self._node_query(unit)
        own_tags = self._l_constants(unit, parent_level)
        own_items = own_tags + [
            ProjectItem(ColumnRef(stv.name), stv.name) for stv in unit.args
        ]
        if not unit.children:
            return Project(base, own_items)

        child_plans = []
        for ordinal, child in enumerate(unit.children):
            plan = self._outer_join_plan(child, unit.level)
            items = [ProjectItem(ColumnRef(c.name), c.name)
                     for c in plan.columns()]
            items.append(ConstantColumn(_BRANCH_TAG, ordinal, SqlType.INTEGER))
            child_plans.append(Project(plan, items))
        union = child_plans[0] if len(child_plans) == 1 else OuterUnion(child_plans)

        join_key_names = set()
        for child in unit.children:
            join_key_names.update(s.name for s in unit.shared_args(child))
        join_key_names.add(_BRANCH_TAG)
        renamed_items = []
        for col in union.columns():
            if col.name in join_key_names:
                renamed_items.append(
                    ProjectItem(ColumnRef(col.name), _JOIN_PREFIX + col.name)
                )
            else:
                renamed_items.append(ProjectItem(ColumnRef(col.name), col.name))
        renamed = Project(union, renamed_items)

        # Tag each branch on the child's first bridged level (paper style:
        # ``ON (L2=1 AND ...) OR (L2=2 AND ...)``).  When reduction makes
        # children hang off different merged members, those L tags can
        # collide; fall back to a synthetic branch-ordinal column so no
        # child's rows can satisfy another child's branch.
        tags = []
        for child in unit.children:
            tag_level = min(child.level, unit.level + 1)
            tags.append((_l_name(tag_level), child.index[tag_level - 1]))
        if len(set(tags)) != len(tags):
            tags = [(_BRANCH_TAG, i) for i in range(len(unit.children))]

        branches = []
        for child, (tag_column, tag_value) in zip(unit.children, tags):
            equalities = [
                (stv.name, _JOIN_PREFIX + stv.name)
                for stv in unit.shared_args(child)
            ]
            branches.append(
                JoinBranch(
                    equalities=tuple(equalities),
                    tag_column=tag_column if tag_column != _BRANCH_TAG
                    else _JOIN_PREFIX + _BRANCH_TAG,
                    tag_value=tag_value,
                )
            )
        join = LeftOuterJoin(base, renamed, branches)

        out_items = list(own_tags)
        out_items.extend(
            ProjectItem(ColumnRef(stv.name), stv.name) for stv in unit.args
        )
        for col in renamed.columns():
            if not col.name.startswith(_JOIN_PREFIX):
                out_items.append(ProjectItem(ColumnRef(col.name), col.name))
        return Project(join, out_items)

    # -- outer-union style ([9]) ------------------------------------------------------

    def _outer_union_plan(self, root):
        """One branch per unit: the chain of joins along the path from the
        subtree root, inner for ``1``/``+`` labels, outer otherwise."""
        branches = []
        for unit in root.walk():
            branches.append(self._path_query(root, unit))
        if len(branches) == 1:
            return branches[0]
        return OuterUnion(branches)

    def _path_query(self, root, terminal):
        path = self._path_to(root, terminal)
        plan = self._tagged_base(path[0], None)
        for parent, child in zip(path, path[1:]):
            child_base = self._tagged_base(child, parent.level)
            shared = parent.shared_args(child)
            renamed_items = []
            for col in child_base.columns():
                if col.name in {s.name for s in shared}:
                    renamed_items.append(
                        ProjectItem(ColumnRef(col.name), _JOIN_PREFIX + col.name)
                    )
                else:
                    renamed_items.append(ProjectItem(ColumnRef(col.name), col.name))
            renamed = Project(child_base, renamed_items)
            equalities = [(s.name, _JOIN_PREFIX + s.name) for s in shared]
            label = child.representative.label
            if label in ("1", "+"):
                joined = InnerJoin(plan, renamed, equalities)
            else:
                joined = LeftOuterJoin(
                    plan, renamed, [JoinBranch(tuple(equalities))]
                )
            out_items = [
                ProjectItem(ColumnRef(c.name), c.name)
                for c in joined.columns()
                if not c.name.startswith(_JOIN_PREFIX)
            ]
            plan = Project(joined, out_items)
        return plan

    def _tagged_base(self, unit, parent_level):
        base = self._node_query(unit)
        items = self._l_constants(unit, parent_level)
        items.extend(ProjectItem(ColumnRef(s.name), s.name) for s in unit.args)
        return Project(base, items)

    @staticmethod
    def _l_constants(unit, parent_level):
        """The L tag constants this unit contributes: its own level plus
        any levels bridging the gap to the parent unit's representative."""
        start = unit.level if parent_level is None else parent_level + 1
        return [
            ConstantColumn(_l_name(level), unit.index[level - 1],
                           SqlType.INTEGER)
            for level in range(start, unit.level + 1)
        ]

    @staticmethod
    def _path_to(root, terminal):
        def search(unit, acc):
            acc.append(unit)
            if unit is terminal:
                return True
            for child in unit.children:
                if search(child, acc):
                    return True
            acc.pop()
            return False

        path = []
        if not search(root, path):
            raise PlanError(f"{terminal} not reachable from {root}")
        return path


def rule_to_algebra(rule, schema, extra_filters=(), head=None):
    """Translate one datalog rule into algebra: joins of the body atoms in
    rule (scope) order, the rule's filters, and a DISTINCT projection onto
    the head.

    Folding atoms strictly in scope order matters: a child rule's body
    extends its parent's, so the parent's join chain is a structural prefix
    of the child's and the engine's common-subexpression sharing evaluates
    it only once per combined query.

    ``extra_filters`` appends additional :class:`Comparison` predicates
    (used by XML-QL composition); ``head`` overrides the projected
    (Stv, ref) pairs.
    """
    if not rule.atoms:
        raise PlanError("rule has an empty body")
    scans = {alias: Scan(schema.table(table), alias)
             for table, alias in rule.atoms}
    pending_eqs = [tuple(e) for e in rule.equalities]
    order = [alias for _, alias in rule.atoms]
    plan = scans[order[0]]
    joined = {order[0]}
    for alias in order[1:]:
        eqs = []
        for left, right in pending_eqs:
            left_alias = left.split(".", 1)[0]
            right_alias = right.split(".", 1)[0]
            if left_alias in joined and right_alias == alias:
                eqs.append((left, right))
            elif right_alias in joined and left_alias == alias:
                eqs.append((right, left))
        # An atom with no connecting equality joins as a cartesian product
        # (legal, rare).
        plan = InnerJoin(plan, scans[alias], eqs)
        joined.add(alias)
        for eq in eqs:
            _discard_eq(pending_eqs, eq)
    # Leftover equalities (join cycles) become residual filters.
    residual = [
        Comparison("=", ColumnRef(l), ColumnRef(r)) for l, r in pending_eqs
    ]
    for ref, op, value in rule.filters:
        if isinstance(value, tuple) and value and value[0] == "col":
            residual.append(Comparison(op, ColumnRef(ref), ColumnRef(value[1])))
        else:
            literal = value.value if hasattr(value, "value") else value
            residual.append(Comparison(op, ColumnRef(ref), Literal(literal)))
    residual.extend(extra_filters)
    if residual:
        plan = Filter(plan, And.of(residual))
    head = rule.head if head is None else head
    items = [ProjectItem(ColumnRef(ref), stv.name) for stv, ref in head]
    return Distinct(Project(plan, items))


def _l_name(level):
    return f"L{level}"


def _discard_eq(pending, eq):
    left, right = eq
    for candidate in list(pending):
        if set(candidate) == {left, right}:
            pending.remove(candidate)
