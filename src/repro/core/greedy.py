"""The greedy plan-generation algorithm (Sec. 5, Fig. 17).

``genPlan`` walks the view tree's edges greedily.  The *relative cost* of an
edge is ``cost(qc) - (cost(q1) + cost(q2))`` where ``q1``/``q2`` are the
queries of the two components the edge connects and ``qc`` their combined
query; costs come from the RDBMS oracle via

    cost(q, a, b) = a * evaluation_cost(q) + b * data_size(q)

plus the per-query startup overhead (combining two queries saves one
round-trip, which is part of what makes an edge attractive).  The cheapest
edge is added as **mandatory** if its relative cost is below ``t1``, as
**optional** if below ``t2``; in both cases the components merge and the
process repeats until no edge qualifies.

The result is a *family* of plans: the mandatory edges plus any subset of
the optional edges (Fig. 18's solid and dashed edges).

Cost estimates are memoized by component (the set of view-tree nodes it
covers); ``oracle_requests`` counts the distinct component queries actually
sent to the oracle — the paper's Sec. 5.1 observation is that this is far
below the worst case.
"""

import itertools
from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.core.partition import Partition, Subtree
from repro.core.sqlgen import PlanStyle, SqlGenerator
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class GreedyParameters:
    """Coefficients and thresholds of the cost comparison.

    The paper used a=100, b=1, t1=-60000, t2=6000 for every query and both
    configurations, concluding the values depend on the database
    environment, not the query.  The defaults here are calibrated to this
    repo's simulated cost model (see EXPERIMENTS.md) and likewise shared by
    all queries/configurations.
    """

    a: float = 100.0
    b: float = 1.0
    t1: float = -6_150.0
    t2: float = 6_000.0


@dataclass(frozen=True)
class GreedyPlan:
    """The algorithm's output: mandatory and optional edge sets."""

    mandatory: frozenset  # of child-node index tuples
    optional: frozenset
    oracle_requests: int = 0
    oracle_cache_hits: int = 0

    def partitions(self):
        """Every plan in the family: mandatory edges plus any subset of the
        optional edges."""
        optional = sorted(self.optional)
        plans = []
        for r in range(len(optional) + 1):
            for combo in itertools.combinations(optional, r):
                plans.append(Partition(self.mandatory | frozenset(combo)))
        return plans

    def recommended(self):
        """The single representative plan: all qualifying edges kept."""
        return Partition(self.mandatory | self.optional)

    def describe(self):
        def fmt(indices):
            return [
                "S" + ".".join(map(str, index)) for index in sorted(indices)
            ]

        return {
            "mandatory": fmt(self.mandatory),
            "optional": fmt(self.optional),
            "family_size": 2 ** len(self.optional),
        }


class GreedyPlanner:
    """Runs genPlan over a labeled view tree."""

    def __init__(self, tree, schema, estimator, style=PlanStyle.OUTER_JOIN,
                 reduce=False, keep=()):
        self.tree = tree
        self.schema = schema
        self.estimator = estimator
        self.generator = SqlGenerator(
            tree, schema, style=style, reduce=reduce, keep=keep
        )
        self._component_cost = {}
        self.oracle_requests = 0
        self.oracle_cache_hits = 0

    def plan(self, params=None, tracer=None):
        """Run genPlan; ``tracer`` (an observability tracer) records the
        run as a ``plan`` span with the chosen edge counts and the oracle
        traffic as attributes."""
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span("plan", style=self.generator.style.value) as span:
            plan = self._plan(params)
            span.set(
                mandatory=len(plan.mandatory),
                optional=len(plan.optional),
                oracle_requests=plan.oracle_requests,
                oracle_cache_hits=plan.oracle_cache_hits,
            )
            return plan

    def _plan(self, params=None):
        params = params or GreedyParameters()
        components = {node.index: frozenset([node.index]) for node in self.tree.nodes}
        edges = {child.index: (parent.index, child.index)
                 for parent, child in self.tree.edges}
        mandatory = set()
        optional = set()

        while edges:
            best = None
            for edge_id, (parent_index, child_index) in edges.items():
                comp1 = components[parent_index]
                comp2 = components[child_index]
                combined = comp1 | comp2
                relative = (
                    self._cost(combined, params)
                    - self._cost(comp1, params)
                    - self._cost(comp2, params)
                )
                if best is None or relative < best[0]:
                    best = (relative, edge_id, combined)
            relative, edge_id, combined = best
            if relative < params.t1:
                mandatory.add(edge_id)
            elif relative < params.t2:
                optional.add(edge_id)
            else:
                break
            del edges[edge_id]
            for index in combined:
                components[index] = combined

        return GreedyPlan(
            mandatory=frozenset(mandatory),
            optional=frozenset(optional),
            oracle_requests=self.oracle_requests,
            oracle_cache_hits=self.oracle_cache_hits,
        )

    # -- component costing -------------------------------------------------------

    def _cost(self, component, params):
        key = component
        if key in self._component_cost:
            self.oracle_cache_hits += 1
            return self._component_cost[key]
        self.oracle_requests += 1
        plan = self._component_plan(component)
        evaluation = (
            self.estimator.evaluation_cost(plan)
            + self.estimator.cost_model.scaled(
                self.estimator.cost_model.startup_ms
            )
        )
        data_size = self.estimator.data_size(plan)
        cost = params.a * evaluation + params.b * data_size
        self._component_cost[key] = cost
        return cost

    def _component_plan(self, component):
        nodes = [self.tree.node(index) for index in sorted(component)]
        roots = [
            node
            for node in nodes
            if node.parent is None or node.parent.index not in component
        ]
        if len(roots) != 1:
            raise PlanError("component is not connected")
        subtree = Subtree(self.tree, roots[0], nodes)
        return self.generator.stream_for_subtree(subtree).plan
