"""View-tree reduction (Sec. 3.5) and plan units.

A *plan unit* is what one node of a (possibly reduced) subtree becomes in
the generated SQL: a set of original view-tree nodes evaluated by a single
combined datalog rule.  Without reduction every unit has exactly one member.
With reduction, groups of subtree nodes connected by ``1``-labeled kept
edges collapse into one unit whose rule is the conjunction of the members'
bodies and whose head is the union of their Skolem-term arguments — this is
sound precisely because a ``1`` label certifies one-and-exactly-one child
instance per parent instance.

Reduction can be *prohibited* for specific nodes (the paper's data-size
heuristic: a large text value replicated into every tuple of the merged
relation can cost more in transfer than it saves in joins) via ``keep``.
"""

from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.core.viewtree import NodeRule


class PlanUnit:
    """One node of the (reduced) plan tree for a subtree."""

    def __init__(self, members):
        self.members = tuple(sorted(members, key=lambda n: n.index))
        self.children = []
        root = self.members[0]
        for member in self.members[1:]:
            if not root.is_ancestor_of(member):
                raise PlanError(
                    "plan-unit members must form a subtree rooted at the "
                    f"topmost member; {member.sfi} is not under {root.sfi}"
                )
        if len(self.members) == 1:
            # A fused node (user Skolem function) keeps its several rules;
            # SQL generation unions the per-rule queries.
            self.rules = tuple(self.members[0].rules)
        else:
            self.rules = (_combine_rules(self.members),)
        args = []
        seen = set()
        for member in self.members:
            for stv in member.args:
                if stv not in seen:
                    seen.add(stv)
                    args.append(stv)
        self.args = tuple(sorted(args, key=lambda v: (v.level, v.ordinal)))

    @property
    def rule(self):
        if len(self.rules) != 1:
            raise PlanError(
                f"unit {self.skolem_name()} has {len(self.rules)} rules"
            )
        return self.rules[0]

    @property
    def representative(self):
        return self.members[0]

    @property
    def index(self):
        return self.representative.index

    @property
    def level(self):
        return len(self.index)

    @property
    def tag_value(self):
        return self.index[-1]

    @property
    def is_reduced(self):
        return len(self.members) > 1

    def skolem_name(self):
        """Reduced units get a primed name, e.g. ``S1.4'`` (Fig. 11)."""
        name = self.representative.sfi
        return name + "'" if self.is_reduced else name

    def shared_args(self, child):
        """Skolem-term variables shared with a child unit: the join keys."""
        child_args = set(child.args)
        return tuple(a for a in self.args if a in child_args)

    def max_index_length(self):
        deepest = max(len(m.index) for m in self.members)
        for child in self.children:
            deepest = max(deepest, child.max_index_length())
        return deepest

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return f"PlanUnit({self.skolem_name()}: {len(self.members)} member(s))"


@dataclass
class ReducedSubtree:
    """The unit tree produced for one subtree of a partition."""

    subtree: object   # core.partition.Subtree
    root: PlanUnit
    reduced: bool

    @property
    def units(self):
        return tuple(self.root.walk())

    def unit_of(self, node):
        for unit in self.root.walk():
            if node in unit.members:
                return unit
        raise PlanError(f"{node.sfi} not in this subtree")


def reduce_subtree(subtree, reduce=True, keep=()):
    """Build the unit tree for ``subtree``.

    With ``reduce=False`` each node becomes its own unit.  With
    ``reduce=True``, nodes connected through ``1``-labeled kept edges are
    grouped, except nodes whose index appears in ``keep`` (never merged into
    their parent's group).
    """
    keep = {tuple(i) for i in keep}
    group_of = {}
    groups = []
    for node in subtree.nodes:  # parents before children
        mergeable = (
            reduce
            and node is not subtree.root
            and subtree.contains(node.parent)
            and node.label == "1"
            and node.index not in keep
        )
        if mergeable and node.parent.index in group_of:
            group = group_of[node.parent.index]
        else:
            group = []
            groups.append(group)
        group.append(node)
        group_of[node.index] = group

    units = {}
    roots = []
    unit_list = []
    for group in groups:
        unit = PlanUnit(group)
        unit_list.append(unit)
        for member in group:
            units[member.index] = unit
    for unit in unit_list:
        parent_node = unit.representative.parent
        if parent_node is not None and subtree.contains(parent_node):
            units[parent_node.index].children.append(unit)
        else:
            roots.append(unit)
    if len(roots) != 1:
        raise PlanError(f"expected one unit-tree root, found {len(roots)}")
    for unit in unit_list:
        unit.children.sort(key=lambda u: u.index)
    return ReducedSubtree(subtree=subtree, root=roots[0], reduced=reduce)


def reduce_partition(tree, partition, subtrees, reduce=True, keep=()):
    """Unit trees for every subtree of a partition, in document order."""
    return [reduce_subtree(s, reduce=reduce, keep=keep) for s in subtrees]


def suggest_keep(tree, database, max_avg_bytes=256.0):
    """The paper's Sec. 3.5 data-size heuristic: nodes whose displayed data
    is large should be *prohibited* from merging, because reduction would
    replicate the large value into every tuple of the merged relation and
    could increase data-transfer time.

    Returns the indices of ``1``-labeled nodes whose displayed columns
    average more than ``max_avg_bytes`` bytes per instance (per the
    database's statistics), suitable for the ``keep=`` parameter of
    :func:`reduce_subtree` / :class:`repro.core.sqlgen.SqlGenerator`.
    """
    from repro.core.viewtree import Stv

    keep = []
    for node in tree.nodes:
        if node.label != "1":
            continue
        display_bytes = 0.0
        for content in node.contents:
            if isinstance(content, Stv) and content.source is not None:
                table, column = content.source
                stats = database.stats(table)
                display_bytes += stats.column(column).avg_width
        if display_bytes > max_avg_bytes:
            keep.append(node.index)
    return tuple(keep)


def _combine_rules(members):
    """Conjoin the members' single rules into one combined rule."""
    atoms = []
    atom_seen = set()
    equalities = []
    eq_seen = set()
    filters = []
    filter_seen = set()
    head = []
    head_seen = set()
    for member in members:
        if len(member.rules) != 1:
            raise PlanError(
                f"cannot combine fused node {member.sfi} ({len(member.rules)} rules)"
            )
        rule = member.rules[0]
        for atom in rule.atoms:
            if atom not in atom_seen:
                atom_seen.add(atom)
                atoms.append(atom)
        for eq in rule.equalities:
            key = frozenset(eq)
            if key not in eq_seen:
                eq_seen.add(key)
                equalities.append(eq)
        for flt in rule.filters:
            if flt not in filter_seen:
                filter_seen.add(flt)
                filters.append(flt)
        for stv, ref in rule.head:
            if stv not in head_seen:
                head_seen.add(stv)
                head.append((stv, ref))
    head.sort(key=lambda pair: (pair[0].level, pair[0].ordinal))
    return NodeRule(
        atoms=tuple(atoms),
        equalities=tuple(equalities),
        filters=tuple(filters),
        head=tuple(head),
    )
